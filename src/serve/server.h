#ifndef RDX_SERVE_SERVER_H_
#define RDX_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/status.h"
#include "serve/plan_cache.h"
#include "serve/protocol.h"

namespace rdx {
namespace serve {

/// Admission-control diagnostic codes cited in rejection replies
/// (docs/serving.md). They extend the RDX lint numbering: RDX001 is the
/// analyzer's "no terminating tier" error — the plan is not weakly
/// acyclic, safe, safely stratified, or super-weakly acyclic, so no
/// static chase bound exists and nothing can be admitted under a finite
/// budget (the rejection wording comes from TierRejectionDetail, shared
/// with the lint and the laconic gate); RDX301 is the serve-layer
/// "static chase-size bound exceeds the admission budget".
inline constexpr char kAdmissionOverBudgetCode[] = "RDX301";
inline constexpr char kAdmissionUnboundedCode[] = "RDX001";

struct ServerOptions {
  std::string socket_path;
  std::string catalog_path;

  /// Engine threads per request (ChaseOptions/DisjunctiveChaseOptions/
  /// HomomorphismOptions num_threads — the rdx::par pool underneath).
  uint64_t num_threads = 1;

  /// Admission budget: a request is rejected before any chase work when
  /// its plan's static FactBound over the decoded instance exceeds this
  /// many facts (ChaseSizeBound::kUnbounded — a non-weakly-acyclic plan —
  /// never passes). Mirrors ChaseOptions::max_new_facts by default.
  uint64_t admit_budget = 5'000'000;

  /// Deadline applied when a request carries deadline_ms == 0
  /// (0 = no deadline).
  uint32_t default_deadline_ms = 0;

  /// Compile every catalog plan at startup instead of on first request.
  bool precompile = false;

  /// Exit after serving this many framed requests (0 = run until
  /// signalled). A testing hook, like rdx_fuzz --iters.
  uint64_t max_requests = 0;
};

/// Executes one framed request against the plan cache: deadline check →
/// plan lookup → RDXC decode → FactBound admission → engine dispatch.
/// `received` is when the request frame finished arriving; deadlines are
/// measured from it. Pure function of its inputs plus the engine layer —
/// the unit-testable core of the daemon (no sockets involved).
///
/// kOk payloads are byte-identical to the stdout of the corresponding
/// one-shot CLI invocation (`rdx_cli chase|reverse|certain`, with
/// --canonical/--laconic/--to-core per the request flags).
Reply ExecuteRequest(PlanCache& plans, const Request& request,
                     const ServerOptions& options,
                     std::chrono::steady_clock::time_point received);

/// The /statsz text: catalog and plan-cache state, request totals, then
/// the process counter/histogram and attribution tables.
std::string StatszText(PlanCache& plans, const ServerOptions& options);

/// The daemon: a Unix-domain stream socket speaking the frame protocol
/// (plus the "GET /statsz" plaintext probe), one handler thread per
/// connection, request execution batched onto the rdx::par pool.
///
/// Lifecycle: Start() loads the catalog and binds the socket; Run()
/// accepts until RequestStop() (signal-safe — SIGINT/SIGTERM handlers
/// call it), then drains: in-flight requests finish and their replies are
/// written before connection threads join. Run() returns the process exit
/// code (0 after a clean drain). Callers flush trace sinks after Run();
/// the drain guarantees OpenSpanCount()==0 by then.
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Loads the catalog, optionally precompiles, binds and listens.
  Status Start();

  /// Accept loop; blocks until RequestStop(). Returns the exit code.
  int Run();

  /// Initiates shutdown. Async-signal-safe: an atomic store plus one
  /// write() to the wake pipe.
  void RequestStop();

  const ServerOptions& options() const { return options_; }
  PlanCache* plans() { return plans_.get(); }

 private:
  void HandleConnection(int fd);
  void HandleStatszProbe(int fd);
  Reply ExecuteOnPool(const Request& request,
                      std::chrono::steady_clock::time_point received);

  ServerOptions options_;
  std::unique_ptr<PlanCache> plans_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::atomic<bool> stop_requested_{false};
  std::atomic<uint64_t> requests_served_{0};

  std::mutex threads_mu_;
  std::vector<std::thread> connection_threads_;
};

}  // namespace serve
}  // namespace rdx

#endif  // RDX_SERVE_SERVER_H_
