#include "serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <utility>
#include <vector>

#include "base/attribution.h"
#include "base/metrics.h"
#include "base/spans.h"
#include "base/strings.h"
#include "base/thread_pool.h"
#include "base/trace.h"
#include "columnar/serialize.h"
#include "compile/laconic.h"
#include "core/query.h"
#include "mapping/extended.h"
#include "mapping/reverse_query.h"

namespace rdx {
namespace serve {

namespace {

/// Attribution domain for per-plan request time (visible on /statsz).
constexpr char kPlanDomain[] = "serve.plan";

Reply ErrorReply(ReplyStatus status, std::string message) {
  Reply reply;
  reply.status = status;
  reply.payload = std::move(message);
  return reply;
}

// Mirrors rdx_cli's Render: the canonical path is process-independent
// (CanonicalText), which is what makes a daemon reply byte-identical to a
// fresh one-shot process despite a dirty interning table.
std::string Render(const Request& request, const Instance& instance) {
  return request.has_flag(kFlagCanonical) ? instance.CanonicalText()
                                          : instance.ToString();
}

Reply RunChase(const CompiledPlan& plan, const Request& request,
               const Instance& instance, const ServerOptions& options) {
  ChaseOptions chase_options;
  chase_options.num_threads = options.num_threads;
  if (plan.bare_deps) {
    // A dependency-set plan: plain chase over the set as written. The
    // laconic flag has nothing to compile against (no mapping shape), so
    // it is refused rather than silently ignored.
    if (request.has_flag(kFlagLaconic)) {
      return ErrorReply(ReplyStatus::kBadRequest,
                        StrCat("plan '", plan.name,
                               "' is a bare dependency set; laconic "
                               "requests need a mapping plan (RDX114)"));
    }
    Result<ChaseResult> chased = Chase(instance, plan.dependencies,
                                       chase_options);
    if (!chased.ok()) {
      return ErrorReply(ReplyStatus::kEngineError, chased.status().ToString());
    }
    if (request.has_flag(kFlagToCore)) {
      HomomorphismOptions hom;
      hom.num_threads = options.num_threads;
      Result<Instance> core = ComputeCore(chased->added, hom);
      if (!core.ok()) {
        return ErrorReply(ReplyStatus::kEngineError, core.status().ToString());
      }
      return Reply{ReplyStatus::kOk, StrCat(Render(request, *core), "\n")};
    }
    return Reply{ReplyStatus::kOk, StrCat(Render(request, chased->added), "\n")};
  }
  if (request.has_flag(kFlagLaconic)) {
    Result<LaconicChaseResult> r = LaconicChaseWithCompilation(
        plan.mapping, plan.laconic, instance, chase_options);
    if (!r.ok()) {
      return ErrorReply(ReplyStatus::kEngineError, r.status().ToString());
    }
    return Reply{ReplyStatus::kOk, StrCat(Render(request, r->core), "\n")};
  }
  Result<ChaseResult> chased =
      ChaseMappingWithStats(plan.mapping, instance, chase_options);
  if (!chased.ok()) {
    return ErrorReply(ReplyStatus::kEngineError, chased.status().ToString());
  }
  if (request.has_flag(kFlagToCore)) {
    HomomorphismOptions hom;
    hom.num_threads = options.num_threads;
    Result<Instance> core = ComputeCore(chased->added, hom);
    if (!core.ok()) {
      return ErrorReply(ReplyStatus::kEngineError, core.status().ToString());
    }
    return Reply{ReplyStatus::kOk, StrCat(Render(request, *core), "\n")};
  }
  return Reply{ReplyStatus::kOk, StrCat(Render(request, chased->added), "\n")};
}

Reply RunReverse(const CompiledPlan& plan, const Request& request,
                 const Instance& instance, const ServerOptions& options) {
  if (request.has_flag(kFlagLaconic)) {
    // Mirrors `rdx_cli reverse --laconic`: the fallback for an
    // un-laconicizable reverse is the disjunctive chase, whose output is
    // not a core, so this refuses instead of falling back.
    if (!plan.laconic.laconic) {
      return ErrorReply(
          ReplyStatus::kEngineError,
          StrCat("cannot laconicize reverse mapping:\n",
                 plan.laconic.ToString()));
    }
    ChaseOptions chase_options;
    chase_options.num_threads = options.num_threads;
    Result<LaconicChaseResult> r = LaconicChaseWithCompilation(
        plan.mapping, plan.laconic, instance, chase_options);
    if (!r.ok()) {
      return ErrorReply(ReplyStatus::kEngineError, r.status().ToString());
    }
    return Reply{ReplyStatus::kOk,
                 StrCat("core universal solution:\n  ",
                        Render(request, r->core), "\n")};
  }
  DisjunctiveChaseOptions options_d;
  options_d.num_threads = options.num_threads;
  Result<std::vector<Instance>> branches =
      DisjunctiveChaseMapping(plan.mapping, instance, options_d);
  if (!branches.ok()) {
    return ErrorReply(ReplyStatus::kEngineError, branches.status().ToString());
  }
  std::vector<std::string> worlds;
  worlds.reserve(branches->size());
  for (const Instance& v : *branches) worlds.push_back(Render(request, v));
  // Mirrors rdx_cli: canonical world lists are sorted, so the order does
  // not leak the branch-discovery order (interning-history-dependent).
  if (request.has_flag(kFlagCanonical)) {
    std::sort(worlds.begin(), worlds.end());
  }
  std::string payload =
      StrCat(branches->size(), " possible world(s):\n");
  for (const std::string& w : worlds) {
    payload += StrCat("  ", w, "\n");
  }
  return Reply{ReplyStatus::kOk, std::move(payload)};
}

Reply RunCertain(PlanCache& plans, const CompiledPlan& plan,
                 const Request& request, const Instance& instance,
                 const ServerOptions& options) {
  if (request.reverse_mapping.empty()) {
    return ErrorReply(ReplyStatus::kBadRequest,
                      "certain request carries no reverse mapping name");
  }
  Result<const CompiledPlan*> reverse_plan = plans.Get(request.reverse_mapping);
  if (!reverse_plan.ok()) {
    return ErrorReply(ReplyStatus::kNotFound,
                      reverse_plan.status().ToString());
  }
  Result<ConjunctiveQuery> query = ConjunctiveQuery::Parse(request.query);
  if (!query.ok()) {
    return ErrorReply(ReplyStatus::kBadRequest,
                      StrCat("bad query: ", query.status().ToString()));
  }
  ChaseOptions chase_options;
  chase_options.num_threads = options.num_threads;
  DisjunctiveChaseOptions disjunctive_options;
  disjunctive_options.num_threads = options.num_threads;
  Result<TupleSet> certain =
      ReverseCertainAnswers(plan.mapping, (*reverse_plan)->mapping, *query,
                            instance, chase_options, disjunctive_options);
  if (!certain.ok()) {
    return ErrorReply(ReplyStatus::kEngineError, certain.status().ToString());
  }
  return Reply{ReplyStatus::kOk, StrCat(TupleSetToString(*certain), "\n")};
}

}  // namespace

Reply ExecuteRequest(PlanCache& plans, const Request& request,
                     const ServerOptions& options,
                     std::chrono::steady_clock::time_point received) {
  obs::Span span("serve.request");
  span.Arg("command", CommandName(request.command))
      .Arg("plan", request.mapping);
  obs::Counter::Get("serve.requests").Increment();

  // Deadlines are checked before any engine work starts; the chase itself
  // is not interrupted mid-flight (ChaseOptions budgets bound it instead).
  const uint32_t deadline_ms = request.deadline_ms != 0
                                   ? request.deadline_ms
                                   : options.default_deadline_ms;
  if (deadline_ms != 0 &&
      std::chrono::steady_clock::now() - received >=
          std::chrono::milliseconds(deadline_ms)) {
    obs::Counter::Get("serve.deadline_expired").Increment();
    return ErrorReply(
        ReplyStatus::kDeadlineExpired,
        StrCat("deadline of ", deadline_ms, "ms expired before execution"));
  }

  Result<const CompiledPlan*> plan_result = plans.Get(request.mapping);
  if (!plan_result.ok()) {
    return ErrorReply(ReplyStatus::kNotFound, plan_result.status().ToString());
  }
  const CompiledPlan& plan = **plan_result;

  Result<Instance> instance = columnar::Deserialize(request.instance_rdxc);
  if (!instance.ok()) {
    return ErrorReply(ReplyStatus::kBadRequest,
                      StrCat("bad RDXC instance payload: ",
                             instance.status().ToString()));
  }

  // Admission control: a static FactBound over the decoded instance,
  // evaluated BEFORE any chase work. The classic weak-acyclicity tables
  // are tried first; when they are unbounded, the termination hierarchy's
  // tiered per-stratum tables take over, so any terminating tier (safe,
  // safely-stratified, super-weakly-acyclic) stays admissible. Only a
  // tier-unknown plan has no bound at all, and no finite budget admits it.
  uint64_t bound = plan.analysis.bound.FactBound(*instance);
  if (bound == ChaseSizeBound::kUnbounded) {
    bound = plan.analysis.termination.bound.FactBound(*instance);
  }
  if (bound == ChaseSizeBound::kUnbounded) {
    obs::Counter::Get("serve.admission_rejects").Increment();
    obs::Counter::Get(
        StrCat("serve.admission_rejects.", kAdmissionUnboundedCode))
        .Increment();
    return ErrorReply(
        ReplyStatus::kRejected,
        StrCat(kAdmissionUnboundedCode, ": plan '", plan.name,
               "' cannot be admitted under a finite budget: ",
               TierRejectionDetail(plan.analysis.termination,
                                   TerminationTier::kSuperWeaklyAcyclic)));
  }
  if (bound > options.admit_budget) {
    obs::Counter::Get("serve.admission_rejects").Increment();
    obs::Counter::Get(
        StrCat("serve.admission_rejects.", kAdmissionOverBudgetCode))
        .Increment();
    return ErrorReply(
        ReplyStatus::kRejected,
        StrCat(kAdmissionOverBudgetCode, ": static chase bound of ", bound,
               " fact(s) for plan '", plan.name, "' over ", instance->size(),
               " input fact(s) exceeds the admission budget of ",
               options.admit_budget));
  }

  // A bare dependency-set plan has no source/target split, so reverse
  // and certain-answers requests are shapeless for it; only the chase
  // applies.
  if (plan.bare_deps && request.command != Command::kChase) {
    return ErrorReply(
        ReplyStatus::kBadRequest,
        StrCat("plan '", plan.name, "' is a bare dependency set; ",
               CommandName(request.command),
               " requests need a source-to-target mapping plan"));
  }

  const auto started = std::chrono::steady_clock::now();
  Reply reply;
  switch (request.command) {
    case Command::kChase:
      reply = RunChase(plan, request, *instance, options);
      break;
    case Command::kReverse:
      reply = RunReverse(plan, request, *instance, options);
      break;
    case Command::kCertain:
      reply = RunCertain(plans, plan, request, *instance, options);
      break;
    default:
      reply = ErrorReply(ReplyStatus::kBadRequest,
                         StrCat("command ", CommandName(request.command),
                                " is not an execution command"));
      break;
  }
  const uint64_t us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started)
          .count());
  obs::Counter::Get("serve.request_us").Add(us);
  if (obs::AttributionEnabled()) {
    obs::Attribution& row = obs::Attribution::Get(kPlanDomain, plan.name);
    row.AddTimeMicros(us);
    row.AddFired(1);
  }
  if (reply.status == ReplyStatus::kOk) {
    obs::Counter::Get("serve.replies_ok").Increment();
  } else {
    obs::Counter::Get("serve.replies_error").Increment();
  }
  span.Arg("status", ReplyStatusName(reply.status)).Arg("us", us);
  if (obs::TracingEnabled()) {
    obs::EmitTrace(obs::TraceEvent("serve.request")
                       .Add("command", CommandName(request.command))
                       .Add("plan", request.mapping)
                       .Add("status", ReplyStatusName(reply.status))
                       .Add("bound", bound)
                       .Add("us", us));
  }
  return reply;
}

std::string StatszText(PlanCache& plans, const ServerOptions& options) {
  std::string out = "rdx_serve statsz\n";
  out += StrCat("catalog: ", options.catalog_path, "\n");
  out += StrCat("socket: ", options.socket_path, "\n");
  out += StrCat("threads: ", options.num_threads,
                "  admit_budget: ", options.admit_budget,
                "  default_deadline_ms: ", options.default_deadline_ms, "\n");
  out += StrCat("plans: ", plans.compiled(), "/", plans.Names().size(),
                " compiled  cache_hits: ", plans.hits(),
                "  cache_misses: ", plans.misses(), "\n");
  for (const std::string& summary : plans.Summaries()) {
    out += StrCat("  ", summary, "\n");
  }
  // Per-admission-code reject counts, always rendered (the aggregate
  // serve.admission_rejects counter only appears in the counter dump
  // after its first increment).
  out += StrCat(
      "admission_rejects: ", kAdmissionUnboundedCode, "=",
      obs::Counter::Get(
          StrCat("serve.admission_rejects.", kAdmissionUnboundedCode))
          .value(),
      " ", kAdmissionOverBudgetCode, "=",
      obs::Counter::Get(
          StrCat("serve.admission_rejects.", kAdmissionOverBudgetCode))
          .value(),
      "\n");
  out += obs::CountersToString();
  out += obs::AttributionToString();
  return out;
}

Server::Server(ServerOptions options) : options_(std::move(options)) {}

Server::~Server() {
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_read_fd_ >= 0) close(wake_read_fd_);
  if (wake_write_fd_ >= 0) close(wake_write_fd_);
}

Status Server::Start() {
  RDX_ASSIGN_OR_RETURN(std::vector<CatalogEntry> entries,
                       LoadCatalogFile(options_.catalog_path));
  plans_ = std::make_unique<PlanCache>(std::move(entries));
  if (options_.precompile) {
    RDX_RETURN_IF_ERROR(plans_->CompileAll());
  }

  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.empty() ||
      options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        StrCat("socket path must be 1..", sizeof(addr.sun_path) - 1,
               " bytes, got ", options_.socket_path.size()));
  }
  std::memcpy(addr.sun_path, options_.socket_path.data(),
              options_.socket_path.size());

  listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(StrCat("socket(): ", std::strerror(errno)));
  }
  // A previous daemon's socket file would make bind() fail with
  // EADDRINUSE; the path is daemon-owned, so replace it.
  unlink(options_.socket_path.c_str());
  if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    return Status::Internal(StrCat("bind(", options_.socket_path,
                                   "): ", std::strerror(errno)));
  }
  if (listen(listen_fd_, 16) != 0) {
    return Status::Internal(StrCat("listen(): ", std::strerror(errno)));
  }

  int wake[2];
  if (pipe(wake) != 0) {
    return Status::Internal(StrCat("pipe(): ", std::strerror(errno)));
  }
  wake_read_fd_ = wake[0];
  wake_write_fd_ = wake[1];
  return Status::OK();
}

void Server::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  if (wake_write_fd_ >= 0) {
    const char byte = 0;
    // Best-effort wake; the accept loop also times out periodically.
    [[maybe_unused]] ssize_t n = write(wake_write_fd_, &byte, 1);
  }
}

int Server::Run() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_read_fd_, POLLIN, 0};
    int ready = poll(fds, 2, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stop_requested_.load(std::memory_order_acquire)) break;
    if (ready == 0 || (fds[0].revents & POLLIN) == 0) continue;
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lock(threads_mu_);
    connection_threads_.emplace_back(
        [this, fd]() { HandleConnection(fd); });
  }
  // Drain: every connection thread finishes its in-flight request and
  // writes the reply before exiting its loop.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    threads.swap(connection_threads_);
  }
  for (std::thread& t : threads) t.join();
  close(listen_fd_);
  listen_fd_ = -1;
  unlink(options_.socket_path.c_str());
  return 0;
}

Reply Server::ExecuteOnPool(const Request& request,
                            std::chrono::steady_clock::time_point received) {
  par::ThreadPool& pool = par::ThreadPool::Shared(
      static_cast<std::size_t>(options_.num_threads));
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Reply reply;
  pool.Submit([&]() {
    Reply r = ExecuteRequest(*plans_, request, options_, received);
    std::lock_guard<std::mutex> lock(mu);
    reply = std::move(r);
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&]() { return done; });
  return reply;
}

void Server::HandleStatszProbe(int fd) {
  // Drain whatever request line arrived; the reply does not depend on it.
  char buf[512];
  [[maybe_unused]] ssize_t n = recv(fd, buf, sizeof(buf), 0);
  const std::string body = StatszText(*plans_, options_);
  const std::string response =
      StrCat("HTTP/1.0 200 OK\r\nContent-Type: text/plain\r\n"
             "Content-Length: ", body.size(), "\r\n\r\n", body);
  [[maybe_unused]] Status written = WriteAll(fd, response);
}

void Server::HandleConnection(int fd) {
  // First-bytes sniff: "GET " means a plaintext /statsz probe (curl
  //   --unix-socket), anything else is the framed protocol.
  char head[4];
  ssize_t peeked = recv(fd, head, sizeof(head), MSG_PEEK);
  if (peeked == sizeof(head) && std::memcmp(head, "GET ", 4) == 0) {
    HandleStatszProbe(fd);
    close(fd);
    return;
  }

  while (true) {
    pollfd pfd{fd, POLLIN, 0};
    int ready = poll(&pfd, 1, 200);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) {
      // Idle tick: between frames a stop request ends the connection.
      if (stop_requested_.load(std::memory_order_acquire)) break;
      continue;
    }

    bool clean_eof = false;
    Result<std::string> frame = ReadFrame(fd, &clean_eof);
    if (!frame.ok()) {
      // The stream is desynchronized; a framed error reply is still
      // well-formed, so send one before closing.
      Reply reply{ReplyStatus::kBadRequest, frame.status().ToString()};
      [[maybe_unused]] Status s = WriteFrame(fd, EncodeReply(reply));
      break;
    }
    if (clean_eof) break;
    const auto received = std::chrono::steady_clock::now();

    Reply reply;
    bool stop_after_reply = false;
    Result<Request> request = DecodeRequest(*frame);
    if (!request.ok()) {
      reply = Reply{ReplyStatus::kBadRequest, request.status().ToString()};
    } else if (request->command == Command::kStatsz) {
      reply = Reply{ReplyStatus::kOk, StatszText(*plans_, options_)};
    } else if (request->command == Command::kShutdown) {
      reply = Reply{ReplyStatus::kOk, "shutting down\n"};
      stop_after_reply = true;
    } else {
      reply = ExecuteOnPool(*request, received);
    }

    if (!WriteFrame(fd, EncodeReply(reply)).ok()) break;
    const uint64_t served =
        requests_served_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (stop_after_reply ||
        (options_.max_requests != 0 && served >= options_.max_requests)) {
      RequestStop();
      break;
    }
    if (stop_requested_.load(std::memory_order_acquire)) break;
  }
  close(fd);
}

}  // namespace serve
}  // namespace rdx
