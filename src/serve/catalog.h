#ifndef RDX_SERVE_CATALOG_H_
#define RDX_SERVE_CATALOG_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace rdx {
namespace serve {

/// One catalog line: a request-visible plan name bound to a mapping file
/// (mapping_io.h format), or — when the path ends in .rdxd — to a bare
/// dependency-set file (the `rdx_lint --deps` format). Dependency-set
/// plans serve chase requests only and are admitted off the termination
/// hierarchy's tiered bound when they are not weakly acyclic.
struct CatalogEntry {
  std::string name;
  std::string path;
};

/// Parses the catalog text format (docs/serving.md):
///
///   # the four paper mappings
///   decomposition = decomposition.rdx
///   selfloop_reverse = selfloop_reverse.rdx
///
/// One `name = path` binding per line; '#' starts a comment; blank lines
/// are skipped. Names must be identifiers ([A-Za-z0-9_]) and unique.
/// Relative paths are resolved against `base_dir` (pass "" to keep them
/// as written).
Result<std::vector<CatalogEntry>> ParseCatalog(std::string_view text,
                                               std::string_view base_dir);

/// Reads and parses a catalog file; relative entry paths resolve against
/// the catalog file's own directory, so a checked-in catalog works from
/// any working directory.
Result<std::vector<CatalogEntry>> LoadCatalogFile(const std::string& path);

}  // namespace serve
}  // namespace rdx

#endif  // RDX_SERVE_CATALOG_H_
