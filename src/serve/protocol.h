#ifndef RDX_SERVE_PROTOCOL_H_
#define RDX_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "base/status.h"

namespace rdx {
namespace serve {

/// The rdx_serve socket protocol (docs/serving.md): length-prefixed
/// frames over a SOCK_STREAM connection. Every frame is
///
///   u32le body_length | body
///
/// and every multi-byte integer in a body is little-endian fixed width.
/// Instance payloads inside request bodies are the canonical RDXC binary
/// wire format (docs/storage.md) — the daemon never parses instance text.
///
/// A connection may pipeline frames: the server answers each request with
/// exactly one reply frame, in order. As a convenience, a connection whose
/// first four bytes are "GET " is treated as a plaintext /statsz probe
/// (`curl --unix-socket ... http://x/statsz`) instead of a frame stream.

inline constexpr uint8_t kProtocolVersion = 1;

/// Frames above this limit are rejected before allocation; a corrupt
/// length prefix must not look like a 4 GiB read.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

enum class Command : uint8_t {
  kChase = 1,    // chase the named mapping over the instance payload
  kReverse = 2,  // disjunctive chase (possible worlds)
  kCertain = 3,  // reverse certain answers (needs reverse_mapping + query)
  kStatsz = 4,   // text statistics snapshot; no instance payload
  kShutdown = 5, // ask the daemon to drain and exit; no instance payload
};

/// Request flag bits — the serve spellings of the rdx_cli output flags.
inline constexpr uint8_t kFlagCanonical = 1;  // render via CanonicalForm()
inline constexpr uint8_t kFlagLaconic = 2;    // chase the laconic plan
inline constexpr uint8_t kFlagToCore = 4;     // chase + blocked core
inline constexpr uint8_t kAllFlags =
    kFlagCanonical | kFlagLaconic | kFlagToCore;

/// Request body layout, after the frame length prefix:
///
///   u8  version        (kProtocolVersion)
///   u8  command        (Command)
///   u8  flags          (kFlag* bits; unknown bits are rejected)
///   u32 deadline_ms    (0 = server default)
///   u16 len + bytes    mapping name (catalog key)
///   u16 len + bytes    reverse-mapping name (kCertain only, else empty)
///   u16 len + bytes    query text (kCertain only, else empty)
///   u32 len + bytes    instance, RDXC-encoded (empty for statsz/shutdown)
struct Request {
  Command command = Command::kChase;
  uint8_t flags = 0;
  uint32_t deadline_ms = 0;
  std::string mapping;
  std::string reverse_mapping;
  std::string query;
  std::string instance_rdxc;

  bool has_flag(uint8_t bit) const { return (flags & bit) != 0; }
};

enum class ReplyStatus : uint8_t {
  kOk = 0,               // payload = exactly the one-shot rdx_cli stdout
  kBadRequest = 1,       // malformed body, RDXC decode error, bad query
  kNotFound = 2,         // mapping name not in the catalog
  kRejected = 3,         // admission control: static FactBound over budget
  kDeadlineExpired = 4,  // request deadline elapsed before execution
  kEngineError = 5,      // chase/core/certain computation failed
};

/// Reply body layout: u8 version | u8 status | u32 len + payload bytes.
/// On kOk the payload is byte-identical to the corresponding one-shot
/// rdx_cli stdout; otherwise it is a human-readable error citing the
/// relevant RDX code (RDX001 / RDX301 for admission rejections).
struct Reply {
  ReplyStatus status = ReplyStatus::kOk;
  std::string payload;
};

const char* CommandName(Command command);
const char* ReplyStatusName(ReplyStatus status);

/// Body encoders/decoders (no length prefix — framing is separate).
/// Decoders validate strictly: version, known command, known flag bits,
/// in-bounds lengths, and no trailing bytes.
std::string EncodeRequest(const Request& request);
Result<Request> DecodeRequest(std::string_view body);
std::string EncodeReply(const Reply& reply);
Result<Reply> DecodeReply(std::string_view body);

/// u32le helpers shared with the server's header sniffing.
void AppendU32(std::string* out, uint32_t v);
uint32_t ReadU32(const unsigned char* p);

/// EINTR-safe exact-length fd I/O. ReadFull fails on EOF mid-buffer;
/// WriteAll fails on any write error (callers ignore SIGPIPE).
Status ReadFull(int fd, void* buf, std::size_t n);
Status WriteAll(int fd, std::string_view bytes);

/// Writes one length-prefixed frame.
Status WriteFrame(int fd, std::string_view body);

/// Reads one length-prefixed frame. A clean EOF before the first header
/// byte sets *clean_eof and returns an empty body; EOF anywhere else is
/// an error.
Result<std::string> ReadFrame(int fd, bool* clean_eof);

}  // namespace serve
}  // namespace rdx

#endif  // RDX_SERVE_PROTOCOL_H_
