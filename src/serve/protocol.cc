#include "serve/protocol.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "base/strings.h"

namespace rdx {
namespace serve {

namespace {

void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void AppendU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>(v >> 8));
}

void AppendString16(std::string* out, std::string_view s) {
  AppendU16(out, static_cast<uint16_t>(s.size()));
  out->append(s);
}

void AppendString32(std::string* out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Strict cursor over a request/reply body. Every getter fails on
/// truncation; Done() rejects trailing bytes.
class Cursor {
 public:
  explicit Cursor(std::string_view body) : body_(body) {}

  Status U8(uint8_t* out) {
    if (pos_ + 1 > body_.size()) return Truncated("u8");
    *out = static_cast<uint8_t>(body_[pos_++]);
    return Status::OK();
  }

  Status U16(uint16_t* out) {
    if (pos_ + 2 > body_.size()) return Truncated("u16");
    const auto* p = reinterpret_cast<const unsigned char*>(body_.data() + pos_);
    *out = static_cast<uint16_t>(p[0] | (p[1] << 8));
    pos_ += 2;
    return Status::OK();
  }

  Status U32(uint32_t* out) {
    if (pos_ + 4 > body_.size()) return Truncated("u32");
    *out = ReadU32(
        reinterpret_cast<const unsigned char*>(body_.data() + pos_));
    pos_ += 4;
    return Status::OK();
  }

  Status String16(std::string* out) {
    uint16_t len = 0;
    RDX_RETURN_IF_ERROR(U16(&len));
    return Bytes(len, out);
  }

  Status String32(std::string* out) {
    uint32_t len = 0;
    RDX_RETURN_IF_ERROR(U32(&len));
    return Bytes(len, out);
  }

  Status Done() const {
    if (pos_ != body_.size()) {
      return Status::InvalidArgument(
          StrCat("protocol: ", body_.size() - pos_,
                 " trailing byte(s) after the body at offset ", pos_));
    }
    return Status::OK();
  }

 private:
  Status Bytes(std::size_t len, std::string* out) {
    if (pos_ + len > body_.size()) return Truncated("bytes");
    out->assign(body_, pos_, len);
    pos_ += len;
    return Status::OK();
  }

  Status Truncated(const char* what) const {
    return Status::InvalidArgument(
        StrCat("protocol: truncated ", what, " at offset ", pos_));
  }

  std::string_view body_;
  std::size_t pos_ = 0;
};

Status CheckVersion(uint8_t version) {
  if (version != kProtocolVersion) {
    return Status::InvalidArgument(
        StrCat("protocol: version ", static_cast<int>(version),
               " (this build speaks ", static_cast<int>(kProtocolVersion),
               ")"));
  }
  return Status::OK();
}

}  // namespace

const char* CommandName(Command command) {
  switch (command) {
    case Command::kChase: return "chase";
    case Command::kReverse: return "reverse";
    case Command::kCertain: return "certain";
    case Command::kStatsz: return "statsz";
    case Command::kShutdown: return "shutdown";
  }
  return "unknown";
}

const char* ReplyStatusName(ReplyStatus status) {
  switch (status) {
    case ReplyStatus::kOk: return "ok";
    case ReplyStatus::kBadRequest: return "bad-request";
    case ReplyStatus::kNotFound: return "not-found";
    case ReplyStatus::kRejected: return "rejected";
    case ReplyStatus::kDeadlineExpired: return "deadline-expired";
    case ReplyStatus::kEngineError: return "engine-error";
  }
  return "unknown";
}

void AppendU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

uint32_t ReadU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

std::string EncodeRequest(const Request& request) {
  std::string out;
  AppendU8(&out, kProtocolVersion);
  AppendU8(&out, static_cast<uint8_t>(request.command));
  AppendU8(&out, request.flags);
  AppendU32(&out, request.deadline_ms);
  AppendString16(&out, request.mapping);
  AppendString16(&out, request.reverse_mapping);
  AppendString16(&out, request.query);
  AppendString32(&out, request.instance_rdxc);
  return out;
}

Result<Request> DecodeRequest(std::string_view body) {
  Cursor cursor(body);
  uint8_t version = 0;
  RDX_RETURN_IF_ERROR(cursor.U8(&version));
  RDX_RETURN_IF_ERROR(CheckVersion(version));
  Request request;
  uint8_t command = 0;
  RDX_RETURN_IF_ERROR(cursor.U8(&command));
  if (command < static_cast<uint8_t>(Command::kChase) ||
      command > static_cast<uint8_t>(Command::kShutdown)) {
    return Status::InvalidArgument(
        StrCat("protocol: unknown command ", static_cast<int>(command)));
  }
  request.command = static_cast<Command>(command);
  RDX_RETURN_IF_ERROR(cursor.U8(&request.flags));
  if ((request.flags & ~kAllFlags) != 0) {
    return Status::InvalidArgument(
        StrCat("protocol: unknown flag bits 0x",
               static_cast<int>(request.flags & ~kAllFlags)));
  }
  RDX_RETURN_IF_ERROR(cursor.U32(&request.deadline_ms));
  RDX_RETURN_IF_ERROR(cursor.String16(&request.mapping));
  RDX_RETURN_IF_ERROR(cursor.String16(&request.reverse_mapping));
  RDX_RETURN_IF_ERROR(cursor.String16(&request.query));
  RDX_RETURN_IF_ERROR(cursor.String32(&request.instance_rdxc));
  RDX_RETURN_IF_ERROR(cursor.Done());
  return request;
}

std::string EncodeReply(const Reply& reply) {
  std::string out;
  AppendU8(&out, kProtocolVersion);
  AppendU8(&out, static_cast<uint8_t>(reply.status));
  AppendString32(&out, reply.payload);
  return out;
}

Result<Reply> DecodeReply(std::string_view body) {
  Cursor cursor(body);
  uint8_t version = 0;
  RDX_RETURN_IF_ERROR(cursor.U8(&version));
  RDX_RETURN_IF_ERROR(CheckVersion(version));
  Reply reply;
  uint8_t status = 0;
  RDX_RETURN_IF_ERROR(cursor.U8(&status));
  if (status > static_cast<uint8_t>(ReplyStatus::kEngineError)) {
    return Status::InvalidArgument(
        StrCat("protocol: unknown reply status ", static_cast<int>(status)));
  }
  reply.status = static_cast<ReplyStatus>(status);
  RDX_RETURN_IF_ERROR(cursor.String32(&reply.payload));
  RDX_RETURN_IF_ERROR(cursor.Done());
  return reply;
}

Status ReadFull(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<char*>(buf);
  std::size_t off = 0;
  while (off < n) {
    ssize_t got = ::read(fd, p + off, n - off);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrCat("read: ", std::strerror(errno)));
    }
    if (got == 0) {
      return Status::InvalidArgument(
          StrCat("protocol: connection closed after ", off, " of ", n,
                 " expected byte(s)"));
    }
    off += static_cast<std::size_t>(got);
  }
  return Status::OK();
}

Status WriteAll(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    ssize_t wrote = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrCat("write: ", std::strerror(errno)));
    }
    off += static_cast<std::size_t>(wrote);
  }
  return Status::OK();
}

Status WriteFrame(int fd, std::string_view body) {
  if (body.size() > kMaxFrameBytes) {
    return Status::InvalidArgument(
        StrCat("protocol: frame of ", body.size(), " bytes exceeds the ",
               kMaxFrameBytes, "-byte limit"));
  }
  std::string framed;
  framed.reserve(4 + body.size());
  AppendU32(&framed, static_cast<uint32_t>(body.size()));
  framed.append(body);
  return WriteAll(fd, framed);
}

Result<std::string> ReadFrame(int fd, bool* clean_eof) {
  *clean_eof = false;
  unsigned char header[4];
  ssize_t got;
  do {
    got = ::read(fd, header, sizeof(header));
  } while (got < 0 && errno == EINTR);
  if (got < 0) {
    return Status::Internal(StrCat("read: ", std::strerror(errno)));
  }
  if (got == 0) {
    *clean_eof = true;
    return std::string();
  }
  if (got < 4) {
    RDX_RETURN_IF_ERROR(ReadFull(fd, header + got, sizeof(header) - got));
  }
  uint32_t length = ReadU32(header);
  if (length > kMaxFrameBytes) {
    return Status::InvalidArgument(
        StrCat("protocol: frame length ", length, " exceeds the ",
               kMaxFrameBytes, "-byte limit"));
  }
  std::string body(length, '\0');
  if (length > 0) {
    RDX_RETURN_IF_ERROR(ReadFull(fd, body.data(), length));
  }
  return body;
}

}  // namespace serve
}  // namespace rdx
