#include "serve/plan_cache.h"

#include "base/metrics.h"
#include "base/spans.h"
#include "base/strings.h"
#include "base/trace.h"
#include "mapping/mapping_io.h"
#include "mapping/normalization.h"

namespace rdx {
namespace serve {

namespace {

Result<std::unique_ptr<CompiledPlan>> CompilePlan(const CatalogEntry& entry) {
  obs::Span span("serve.compile");
  auto plan = std::make_unique<CompiledPlan>();
  plan->name = entry.name;
  plan->path = entry.path;
  plan->bare_deps = entry.path.size() >= 5 &&
                    entry.path.compare(entry.path.size() - 5, 5, ".rdxd") == 0;
  {
    obs::ScopedTimer timer(&obs::Counter::Get("serve.plan_compile_us"),
                           &plan->compile_micros);
    if (plan->bare_deps) {
      // A bare dependency-set plan: no schemas, no laconic compilation
      // (the laconic gate requires weak acyclicity AND a source-to-target
      // mapping; a same-schema set admitted at a wider tier serves
      // through the plain chase — RDX114). Admission relies on the
      // termination hierarchy when the classic tables are unbounded.
      RDX_ASSIGN_OR_RETURN(plan->dependencies,
                           LoadDependencySetFile(entry.path));
      AnalysisInput input;
      input.dependencies = plan->dependencies;
      RDX_ASSIGN_OR_RETURN(plan->analysis, AnalyzeDependencies(input));
    } else {
      RDX_ASSIGN_OR_RETURN(plan->mapping, LoadMappingFile(entry.path));
      plan->dependencies = plan->mapping.dependencies();

      AnalysisInput input;
      input.dependencies = plan->mapping.dependencies();
      input.source = plan->mapping.source();
      input.target = plan->mapping.target();
      RDX_ASSIGN_OR_RETURN(plan->analysis, AnalyzeDependencies(input));

      // SchemaMapping construction already enforced the source-to-target
      // shape, so CompileLaconic cannot hit the RDX001 error path here; an
      // out-of-fragment mapping comes back laconic=false with RDX2xx notes
      // and serves through the chase + blocked-core fallback.
      RDX_ASSIGN_OR_RETURN(plan->laconic, CompileLaconic(plan->mapping));

      // Redundancy is reported, never applied: admission bounds and
      // replies are computed over the set as written so replies stay
      // byte-identical to the one-shot CLI. The implication test only
      // covers plain tgds; anything else keeps the diagnostic at 0.
      if (plan->mapping.IsTgdMapping()) {
        Result<std::vector<Dependency>> minimized =
            MinimizeDependencies(plan->mapping.dependencies());
        if (minimized.ok()) {
          plan->redundant_dependencies =
              plan->mapping.dependencies().size() - minimized->size();
        }
      }
    }
  }
  span.Arg("plan", plan->name).Arg("us", plan->compile_micros);
  if (obs::TracingEnabled()) {
    obs::EmitTrace(obs::TraceEvent("serve.plan")
                       .Add("plan", plan->name)
                       .Add("dependencies", plan->dependencies.size())
                       .Add("laconic", plan->laconic.laconic)
                       .Add("weakly_acyclic", plan->analysis.weakly_acyclic)
                       .Add("tier",
                            TerminationTierName(plan->analysis.termination.tier))
                       .Add("redundant", plan->redundant_dependencies)
                       .Add("us", plan->compile_micros));
  }
  return plan;
}

}  // namespace

std::string CompiledPlan::Summary() const {
  return StrCat("plan ", name, bare_deps ? " (dependency set)" : "",
                ": deps=", dependencies.size(),
                " laconic=", laconic.laconic ? "yes" : "no",
                " tier=", TerminationTierName(analysis.termination.tier), " ",
                analysis.bound.ToString(),
                redundant_dependencies > 0
                    ? StrCat(" redundant=", redundant_dependencies)
                    : "",
                " compile_us=", compile_micros);
}

PlanCache::PlanCache(std::vector<CatalogEntry> entries)
    : entries_(std::move(entries)) {}

Result<const CompiledPlan*> PlanCache::Get(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetLocked(name);
}

Result<const CompiledPlan*> PlanCache::GetLocked(const std::string& name) {
  auto it = plans_.find(name);
  if (it != plans_.end()) {
    ++hits_;
    obs::Counter::Get("serve.plan_hits").Increment();
    return it->second.get();
  }
  const CatalogEntry* entry = nullptr;
  for (const CatalogEntry& candidate : entries_) {
    if (candidate.name == name) {
      entry = &candidate;
      break;
    }
  }
  if (entry == nullptr) {
    return Status::NotFound(StrCat(
        "no mapping named '", name, "' in the catalog (names: ",
        JoinMapped(entries_, ", ",
                   [](const CatalogEntry& e) { return e.name; }),
        ")"));
  }
  ++misses_;
  obs::Counter::Get("serve.plan_misses").Increment();
  RDX_ASSIGN_OR_RETURN(std::unique_ptr<CompiledPlan> plan,
                       CompilePlan(*entry));
  const CompiledPlan* raw = plan.get();
  plans_.emplace(name, std::move(plan));
  return raw;
}

Status PlanCache::CompileAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const CatalogEntry& entry : entries_) {
    RDX_RETURN_IF_ERROR(GetLocked(entry.name).status());
  }
  return Status::OK();
}

std::vector<std::string> PlanCache::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const CatalogEntry& entry : entries_) names.push_back(entry.name);
  return names;
}

std::vector<std::string> PlanCache::Summaries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> summaries;
  for (const CatalogEntry& entry : entries_) {
    auto it = plans_.find(entry.name);
    if (it != plans_.end()) summaries.push_back(it->second->Summary());
  }
  return summaries;
}

uint64_t PlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t PlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t PlanCache::compiled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_.size();
}

}  // namespace serve
}  // namespace rdx
