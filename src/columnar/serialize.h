#ifndef RDX_COLUMNAR_SERIALIZE_H_
#define RDX_COLUMNAR_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "base/status.h"
#include "columnar/columnar.h"
#include "core/instance.h"

namespace rdx {
namespace columnar {

/// The RDXC binary wire format: a bit-precise, implementation-independent
/// encoding of an instance (docs/storage.md has the full spec and a
/// worked hex example). Properties:
///
///  - Deterministic: the bytes depend only on the fact set — value and
///    relation dictionaries are sorted byte-lexicographically and rows
///    are sorted per relation, so interning order, insertion order, and
///    process history never leak into the encoding. Two set-equal
///    instances encode to identical bytes.
///  - Canonical: Deserialize accepts exactly one encoding per instance
///    (minimal varints, strictly sorted dictionaries and rows, no unused
///    dictionary entries, checksum), so serialize ∘ deserialize is the
///    identity on accepted byte strings.
///  - Versioned and checksummed: a 1-byte version after the "RDXC" magic,
///    and a trailing FNV-1a64 checksum over everything before it.
///
/// With SerializeOptions::canonical_nulls the instance is first put in
/// fact-set-canonical order and its nulls renamed via
/// Instance::CanonicalForm(), making the bytes identical even across
/// instances that differ by a null renaming (isomorphism fingerprinting
/// for cross-process comparison). The flag is recorded in the header.

inline constexpr char kWireMagic[4] = {'R', 'D', 'X', 'C'};
inline constexpr uint8_t kWireVersion = 1;

/// Header flag bits (the `flags` varint).
inline constexpr uint64_t kWireFlagCanonicalNulls = 1;

struct SerializeOptions {
  /// Rename nulls with Instance::CanonicalForm() (after sorting facts
  /// into the wire order, so the renaming is insertion-order-free) before
  /// encoding. Off by default: plain encoding preserves null labels.
  bool canonical_nulls = false;
};

std::string Serialize(const Instance& instance,
                      const SerializeOptions& options = {});
std::string Serialize(const ColumnarInstance& instance,
                      const SerializeOptions& options = {});

/// Decodes `bytes`, validating strictly (magic, version, flag bits,
/// minimal varints, dictionary/row sortedness, reference bounds, unused
/// dictionary entries, trailing bytes, checksum). Error statuses cite the
/// byte offset of the violation. Relation arities are checked against the
/// process-wide registry via Relation::Intern, so decoding a relation
/// name already interned at a different arity fails cleanly. The decoded
/// instance's insertion order is the wire order (sorted).
Result<Instance> Deserialize(std::string_view bytes);
Result<ColumnarInstance> DeserializeColumnar(std::string_view bytes);

}  // namespace columnar
}  // namespace rdx

#endif  // RDX_COLUMNAR_SERIALIZE_H_
