#include "columnar/columnar.h"

namespace rdx {
namespace columnar {

Fact ColumnarRelation::RowFact(uint32_t row) const {
  std::vector<Value> args;
  args.reserve(cols_.size());
  for (std::size_t pos = 0; pos < cols_.size(); ++pos) {
    args.push_back(Value::FromPackedId(cols_[pos][row]));
  }
  return Fact::MustMake(relation_, std::move(args));
}

ColumnarInstance ColumnarInstance::FromInstance(const Instance& instance) {
  ColumnarInstance out;
  for (const Fact& f : instance.facts()) {
    out.AddFact(f);
  }
  return out;
}

Instance ColumnarInstance::ToInstance() const {
  Instance out;
  for (const RowRef& ref : storage_->order) {
    out.AddFact(storage_->relations[ref.slot].RowFact(ref.row));
  }
  return out;
}

bool ColumnarInstance::AddFact(const Fact& fact) {
  std::vector<ValueId> vids;
  vids.reserve(fact.args().size());
  for (const Value& v : fact.args()) {
    vids.push_back(v.PackedId());
  }
  return AddRow(fact.relation(), vids);
}

uint64_t ColumnarInstance::RowHash(Relation relation, const ValueId* vids,
                                   std::size_t n) {
  uint64_t h = 0xcbf29ce484222325ULL ^ relation.id();
  for (std::size_t i = 0; i < n; ++i) {
    h ^= vids[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool ColumnarInstance::RowEquals(const RowRef& ref, Relation relation,
                                 const ValueId* vids) const {
  const ColumnarRelation& rel = storage_->relations[ref.slot];
  if (!(rel.relation() == relation)) return false;
  for (std::size_t pos = 0; pos < rel.arity(); ++pos) {
    if (rel.cell(pos, ref.row) != vids[pos]) return false;
  }
  return true;
}

bool ColumnarInstance::AddRow(Relation relation,
                              const std::vector<ValueId>& vids) {
  const uint64_t h = RowHash(relation, vids.data(), vids.size());
  auto bucket = storage_->buckets.find(h);
  if (bucket != storage_->buckets.end()) {
    for (const RowRef& ref : bucket->second) {
      if (RowEquals(ref, relation, vids.data())) return false;
    }
  }
  EnsureOwned();
  auto it = storage_->slot_of.find(relation.id());
  uint32_t slot;
  if (it != storage_->slot_of.end()) {
    slot = it->second;
  } else {
    slot = static_cast<uint32_t>(storage_->relations.size());
    storage_->relations.emplace_back(relation);
    storage_->slot_of.emplace(relation.id(), slot);
  }
  const uint32_t row = storage_->relations[slot].AppendRow(vids.data());
  const RowRef ref{slot, row};
  storage_->order.push_back(ref);
  storage_->buckets[h].push_back(ref);
  return true;
}

const ColumnarRelation* ColumnarInstance::Find(Relation relation) const {
  auto it = storage_->slot_of.find(relation.id());
  return it == storage_->slot_of.end() ? nullptr
                                       : &storage_->relations[it->second];
}

bool ColumnarInstance::ContainsRow(Relation relation,
                                   const std::vector<ValueId>& vids) const {
  const uint64_t h = RowHash(relation, vids.data(), vids.size());
  auto bucket = storage_->buckets.find(h);
  if (bucket == storage_->buckets.end()) return false;
  for (const RowRef& ref : bucket->second) {
    if (RowEquals(ref, relation, vids.data())) return true;
  }
  return false;
}

ColumnarIndex::ColumnarIndex(const ColumnarInstance& instance)
    : instance_(instance.Snapshot()) {
  const std::vector<ColumnarRelation>& rels = instance_.relations();
  postings_.resize(rels.size());
  for (std::size_t slot = 0; slot < rels.size(); ++slot) {
    const ColumnarRelation& rel = rels[slot];
    postings_[slot].resize(rel.arity());
    for (std::size_t pos = 0; pos < rel.arity(); ++pos) {
      const std::vector<ValueId>& col = rel.column(pos);
      for (uint32_t row = 0; row < col.size(); ++row) {
        postings_[slot][pos][col[row]].push_back(row);
      }
    }
  }
}

const std::vector<uint32_t>* ColumnarIndex::RowsWith(Relation relation,
                                                     std::size_t pos,
                                                     ValueId vid) const {
  const ColumnarRelation* rel = instance_.Find(relation);
  if (rel == nullptr || pos >= rel->arity()) return nullptr;
  const std::size_t slot =
      static_cast<std::size_t>(rel - instance_.relations().data());
  auto it = postings_[slot][pos].find(vid);
  return it == postings_[slot][pos].end() ? nullptr : &it->second;
}

}  // namespace columnar
}  // namespace rdx
