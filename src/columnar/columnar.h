#ifndef RDX_COLUMNAR_COLUMNAR_H_
#define RDX_COLUMNAR_COLUMNAR_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/instance.h"

namespace rdx {
namespace columnar {

/// A packed value id (Value::PackedId): bit 0 the kind (0 = constant,
/// 1 = null), bits 1..31 the process-wide interning id. The columnar
/// layer stores and compares only these — the interning tables are
/// touched just at the Instance/text/wire boundaries.
using ValueId = uint32_t;

inline constexpr ValueId kNoValueId = Value::kInvalidPackedId;

/// True if `vid` denotes a labeled null.
inline bool IsNullId(ValueId vid) { return (vid & 1u) != 0; }

/// One relation's tuples, struct-of-arrays: column(pos) is a contiguous
/// uint32 vector with one cell per row. Rows are append-only and kept in
/// insertion order; deduplication is the owning ColumnarInstance's job.
class ColumnarRelation {
 public:
  explicit ColumnarRelation(Relation relation)
      : relation_(relation), cols_(relation.arity()) {}

  Relation relation() const { return relation_; }
  uint32_t arity() const { return static_cast<uint32_t>(cols_.size()); }
  uint32_t rows() const { return rows_; }

  ValueId cell(std::size_t pos, uint32_t row) const {
    return cols_[pos][row];
  }
  const std::vector<ValueId>& column(std::size_t pos) const {
    return cols_[pos];
  }

  /// Appends one row (args must have arity() entries); returns its row
  /// number.
  uint32_t AppendRow(const ValueId* args) {
    for (std::size_t pos = 0; pos < cols_.size(); ++pos) {
      cols_[pos].push_back(args[pos]);
    }
    return rows_++;
  }

  /// The row materialized as a Fact (interning-table lookup per cell).
  Fact RowFact(uint32_t row) const;

 private:
  Relation relation_;
  std::vector<std::vector<ValueId>> cols_;
  uint32_t rows_ = 0;
};

/// A set of facts stored columnar: per-relation ColumnarRelation stores
/// plus a global insertion-order log, deduplicated like Instance. The
/// copy constructor is an O(1) snapshot — storage is shared and
/// copy-on-write, so the fuzzer and the core engine can checkpoint an
/// instance for free and only the writer pays (one deep copy on its next
/// mutation). Conversion to/from Instance is cheap and lossless
/// (insertion order included), so Instance remains the parse/API surface.
class ColumnarInstance {
 public:
  /// Insertion-order entry: which relation store, which row.
  struct RowRef {
    uint32_t slot;  // index into relations()
    uint32_t row;
  };

  ColumnarInstance() : storage_(std::make_shared<Storage>()) {}

  static ColumnarInstance FromInstance(const Instance& instance);
  Instance ToInstance() const;

  /// Adds a fact/row; false if already present (set semantics, like
  /// Instance::AddFact). AddRow's `vids` must match the relation's arity.
  bool AddFact(const Fact& fact);
  bool AddRow(Relation relation, const std::vector<ValueId>& vids);

  /// Facts stored (after dedup).
  std::size_t size() const { return storage_->order.size(); }
  bool empty() const { return storage_->order.empty(); }

  /// Relation stores, in first-seen order.
  const std::vector<ColumnarRelation>& relations() const {
    return storage_->relations;
  }
  /// The store for `relation`, or nullptr if it has no rows.
  const ColumnarRelation* Find(Relation relation) const;

  /// Global insertion order over (relation slot, row) pairs.
  const std::vector<RowRef>& order() const { return storage_->order; }

  bool ContainsRow(Relation relation, const std::vector<ValueId>& vids) const;

  /// Explicit spelling of the O(1) copy-on-write snapshot.
  ColumnarInstance Snapshot() const { return *this; }

  /// True if this instance shares storage with a snapshot (diagnostic;
  /// the next mutation will clone).
  bool SharesStorage() const { return storage_.use_count() > 1; }

 private:
  struct Storage {
    std::vector<ColumnarRelation> relations;
    std::unordered_map<uint32_t, uint32_t> slot_of;  // relation id -> slot
    std::vector<RowRef> order;
    // Dedup buckets: row-content hash -> rows with that hash.
    std::unordered_map<uint64_t, std::vector<RowRef>> buckets;
  };

  static uint64_t RowHash(Relation relation, const ValueId* vids,
                          std::size_t n);
  bool RowEquals(const RowRef& ref, Relation relation,
                 const ValueId* vids) const;

  // Copy-on-write: clones the storage iff a snapshot still shares it.
  void EnsureOwned() {
    if (storage_.use_count() > 1) {
      storage_ = std::make_shared<Storage>(*storage_);
    }
  }

  std::shared_ptr<Storage> storage_;
};

/// Flat hash index over a ColumnarInstance: per (relation, position,
/// value-id) posting lists of row numbers, mirroring rdx::FactIndex but
/// addressing rows instead of Fact pointers. The instance's storage must
/// not be mutated while the index is in use (take a Snapshot first — the
/// index holds the snapshot, so indexing is always safe).
class ColumnarIndex {
 public:
  explicit ColumnarIndex(const ColumnarInstance& instance);

  const ColumnarInstance& instance() const { return instance_; }

  /// Rows of `relation` with `vid` at `pos`, or nullptr if none.
  const std::vector<uint32_t>* RowsWith(Relation relation, std::size_t pos,
                                        ValueId vid) const;

 private:
  ColumnarInstance instance_;  // snapshot: pins the indexed storage
  // postings_[slot][pos][vid] -> rows, slots as in instance_.relations().
  std::vector<std::vector<std::unordered_map<ValueId, std::vector<uint32_t>>>>
      postings_;
};

}  // namespace columnar
}  // namespace rdx

#endif  // RDX_COLUMNAR_COLUMNAR_H_
