#include "columnar/serialize.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "base/strings.h"

namespace rdx {
namespace columnar {
namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = kFnvOffset;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

void PutVarint(std::string& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

void PutString(std::string& out, std::string_view s) {
  PutVarint(out, s.size());
  out.append(s);
}

void PutU64LE(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>(v & 0xFF));
    v >>= 8;
  }
}

/// Cursor over the input bytes with offset-citing errors. Every read is
/// strict — varints must be minimal, lengths must fit — so together with
/// the sortedness/usage checks in Deserialize, exactly one byte string
/// decodes to any given instance and re-encoding is the identity.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }

  void Skip(std::size_t n) { pos_ += n; }

  Status Corrupt(std::string_view what) const { return CorruptAt(what, pos_); }
  static Status CorruptAt(std::string_view what, std::size_t offset) {
    return Status::InvalidArgument(
        StrCat("RDXC decode: ", what, " at byte ", offset));
  }

  Result<uint64_t> Varint(std::string_view what) {
    const std::size_t start = pos_;
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos_ >= bytes_.size()) {
        return CorruptAt(StrCat("truncated varint (", what, ")"), start);
      }
      const uint8_t b = static_cast<uint8_t>(bytes_[pos_++]);
      if (shift == 63 && (b & 0xFE) != 0) {
        return CorruptAt(StrCat("varint overflows 64 bits (", what, ")"),
                         start);
      }
      v |= static_cast<uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) {
        if (b == 0 && shift != 0) {
          return CorruptAt(StrCat("non-minimal varint (", what, ")"), start);
        }
        return v;
      }
    }
    return CorruptAt(StrCat("varint overflows 64 bits (", what, ")"), start);
  }

  Result<std::string_view> String(std::string_view what) {
    RDX_ASSIGN_OR_RETURN(const uint64_t len, Varint(StrCat(what, " length")));
    if (len > remaining()) {
      return Corrupt(StrCat("truncated ", what));
    }
    std::string_view s = bytes_.substr(pos_, len);
    pos_ += len;
    return s;
  }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

/// One relation section, rows as ref sequences. A ref packs a dictionary
/// index and the value kind: (index << 1) | is_null.
struct WireRelation {
  uint64_t arity = 0;
  std::set<std::vector<uint64_t>> rows;  // sorted + deduped by the set
};

std::string EncodeBody(const Instance& instance, uint64_t flags) {
  // Dictionaries: every distinct constant name and null label, sorted
  // byte-lexicographically (std::string's comparison is unsigned-byte
  // memcmp order).
  std::set<std::string> constant_names;
  std::set<std::string> null_labels;
  for (const Fact& f : instance.facts()) {
    for (const Value& v : f.args()) {
      (v.IsNull() ? null_labels : constant_names).insert(v.name());
    }
  }
  std::map<std::string, uint64_t> constant_index;
  std::map<std::string, uint64_t> null_index;
  uint64_t next = 0;
  for (const std::string& name : constant_names) constant_index[name] = next++;
  next = 0;
  for (const std::string& label : null_labels) null_index[label] = next++;

  // Relations sorted by name, rows as sorted ref sequences. Distinct facts
  // give distinct rows (the name -> index maps are injective), so the set
  // sizes match the fact counts.
  std::map<std::string, WireRelation> relations;
  for (const Fact& f : instance.facts()) {
    WireRelation& rel = relations[f.relation().name()];
    rel.arity = f.relation().arity();
    std::vector<uint64_t> row;
    row.reserve(f.args().size());
    for (const Value& v : f.args()) {
      const uint64_t index =
          v.IsNull() ? null_index[v.name()] : constant_index[v.name()];
      row.push_back((index << 1) | static_cast<uint64_t>(v.IsNull()));
    }
    rel.rows.insert(std::move(row));
  }

  std::string out;
  out.append(kWireMagic, sizeof(kWireMagic));
  out.push_back(static_cast<char>(kWireVersion));
  PutVarint(out, flags);
  PutVarint(out, constant_names.size());
  for (const std::string& name : constant_names) PutString(out, name);
  PutVarint(out, null_labels.size());
  for (const std::string& label : null_labels) PutString(out, label);
  PutVarint(out, relations.size());
  for (const auto& [name, rel] : relations) {
    PutString(out, name);
    PutVarint(out, rel.arity);
    PutVarint(out, rel.rows.size());
    for (const std::vector<uint64_t>& row : rel.rows) {
      for (uint64_t ref : row) PutVarint(out, ref);
    }
  }
  PutU64LE(out, Fnv1a64(out));
  return out;
}

/// Orders facts by content only — (relation name, then argument kind and
/// name pointwise) — so the order is a function of the fact set, free of
/// interning ids and insertion history. Used to fix the fact order before
/// CanonicalForm(), whose individualization tie-break is order-sensitive.
bool WireFactLess(const Fact& a, const Fact& b) {
  const std::string& an = a.relation().name();
  const std::string& bn = b.relation().name();
  if (an != bn) return an < bn;
  for (std::size_t i = 0; i < a.args().size() && i < b.args().size(); ++i) {
    const Value& av = a.args()[i];
    const Value& bv = b.args()[i];
    if (av.kind() != bv.kind()) return av.kind() < bv.kind();
    const std::string avn = av.name();
    const std::string bvn = bv.name();
    if (avn != bvn) return avn < bvn;
  }
  return a.args().size() < b.args().size();
}

Instance CanonicalizeForWire(const Instance& instance) {
  std::vector<const Fact*> facts;
  facts.reserve(instance.size());
  for (const Fact& f : instance.facts()) facts.push_back(&f);
  std::sort(facts.begin(), facts.end(),
            [](const Fact* a, const Fact* b) { return WireFactLess(*a, *b); });
  Instance sorted = Instance::FromFactPointers(facts);
  return sorted.CanonicalForm();
}

}  // namespace

std::string Serialize(const Instance& instance,
                      const SerializeOptions& options) {
  if (options.canonical_nulls) {
    return EncodeBody(CanonicalizeForWire(instance), kWireFlagCanonicalNulls);
  }
  return EncodeBody(instance, 0);
}

std::string Serialize(const ColumnarInstance& instance,
                      const SerializeOptions& options) {
  return Serialize(instance.ToInstance(), options);
}

Result<Instance> Deserialize(std::string_view bytes) {
  constexpr std::size_t kHeaderSize = sizeof(kWireMagic) + 1;
  constexpr std::size_t kChecksumSize = 8;
  if (bytes.size() < kHeaderSize + kChecksumSize) {
    return Reader::CorruptAt("input shorter than header + checksum", 0);
  }
  if (bytes.compare(0, sizeof(kWireMagic),
                    std::string_view(kWireMagic, sizeof(kWireMagic))) != 0) {
    return Reader::CorruptAt("bad magic (want \"RDXC\")", 0);
  }
  const uint8_t version = static_cast<uint8_t>(bytes[sizeof(kWireMagic)]);
  if (version != kWireVersion) {
    return Status::FailedPrecondition(StrCat(
        "RDXC decode: unsupported wire version ", static_cast<int>(version),
        " (want ", static_cast<int>(kWireVersion), ") at byte ",
        sizeof(kWireMagic)));
  }
  const std::string_view payload =
      bytes.substr(0, bytes.size() - kChecksumSize);
  uint64_t stored_checksum = 0;
  for (int i = 7; i >= 0; --i) {
    stored_checksum = (stored_checksum << 8) |
                      static_cast<uint8_t>(bytes[payload.size() + i]);
  }
  if (Fnv1a64(payload) != stored_checksum) {
    return Reader::CorruptAt("checksum mismatch", payload.size());
  }

  Reader body(payload);
  body.Skip(kHeaderSize);

  RDX_ASSIGN_OR_RETURN(const uint64_t flags, body.Varint("flags"));
  if ((flags & ~kWireFlagCanonicalNulls) != 0) {
    return Reader::CorruptAt("unknown flag bits", kHeaderSize);
  }

  // Dictionaries: strictly ascending, so sortedness doubles as a duplicate
  // check. Usage is tracked to reject unused entries — in a canonical
  // encoding every dictionary entry is referenced by some row.
  auto read_dict = [&body](std::string_view what,
                           std::vector<std::string>& dict) -> Status {
    RDX_ASSIGN_OR_RETURN(const uint64_t count,
                         body.Varint(StrCat(what, " count")));
    if (count > body.remaining()) {
      return body.Corrupt(StrCat(what, " count exceeds input size"));
    }
    dict.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      const std::size_t at = body.pos();
      RDX_ASSIGN_OR_RETURN(std::string_view name, body.String(what));
      if (!dict.empty() && !(dict.back() < name)) {
        return Reader::CorruptAt(
            StrCat(what, " dictionary not strictly ascending"), at);
      }
      dict.emplace_back(name);
    }
    return Status::OK();
  };
  std::vector<std::string> constants;
  std::vector<std::string> nulls;
  RDX_RETURN_IF_ERROR(read_dict("constant", constants));
  RDX_RETURN_IF_ERROR(read_dict("null label", nulls));
  std::vector<bool> constant_used(constants.size(), false);
  std::vector<bool> null_used(nulls.size(), false);

  // Pre-intern the dictionary values once; rows then just index.
  std::vector<Value> constant_values;
  constant_values.reserve(constants.size());
  for (const std::string& name : constants) {
    constant_values.push_back(Value::MakeConstant(name));
  }
  std::vector<Value> null_values;
  null_values.reserve(nulls.size());
  for (const std::string& label : nulls) {
    null_values.push_back(Value::MakeNull(label));
  }

  RDX_ASSIGN_OR_RETURN(const uint64_t n_relations,
                       body.Varint("relation count"));
  if (n_relations > body.remaining()) {
    return body.Corrupt("relation count exceeds input size");
  }
  Instance out;
  std::string prev_name;
  for (uint64_t ri = 0; ri < n_relations; ++ri) {
    const std::size_t name_at = body.pos();
    RDX_ASSIGN_OR_RETURN(std::string_view name, body.String("relation name"));
    if (ri > 0 && !(prev_name < name)) {
      return Reader::CorruptAt("relations not strictly ascending by name",
                               name_at);
    }
    prev_name.assign(name);
    RDX_ASSIGN_OR_RETURN(const uint64_t arity, body.Varint("arity"));
    if (arity > body.remaining() + 1) {
      return body.Corrupt("arity exceeds input size");
    }
    auto relation = Relation::Intern(name, static_cast<uint32_t>(arity));
    if (!relation.ok()) return relation.status();
    RDX_ASSIGN_OR_RETURN(const uint64_t n_rows, body.Varint("row count"));
    if (n_rows == 0) {
      return body.Corrupt("relation with zero rows");
    }
    if (n_rows > body.remaining() + 1) {
      return body.Corrupt("row count exceeds input size");
    }
    std::vector<uint64_t> prev_row;
    std::vector<uint64_t> row(arity);
    std::vector<Value> args(arity);
    for (uint64_t k = 0; k < n_rows; ++k) {
      const std::size_t row_at = body.pos();
      for (uint64_t pos = 0; pos < arity; ++pos) {
        RDX_ASSIGN_OR_RETURN(const uint64_t ref, body.Varint("value ref"));
        const bool is_null = (ref & 1) != 0;
        const uint64_t index = ref >> 1;
        if (is_null) {
          if (index >= nulls.size()) {
            return Reader::CorruptAt("null ref out of range", row_at);
          }
          null_used[index] = true;
          args[pos] = null_values[index];
        } else {
          if (index >= constants.size()) {
            return Reader::CorruptAt("constant ref out of range", row_at);
          }
          constant_used[index] = true;
          args[pos] = constant_values[index];
        }
        row[pos] = ref;
      }
      if (k > 0 && !(prev_row < row)) {
        return Reader::CorruptAt("rows not strictly ascending", row_at);
      }
      prev_row = row;
      out.AddFact(Fact::MustMake(*relation, args));
    }
  }
  if (body.remaining() != 0) {
    return body.Corrupt("trailing bytes after last relation");
  }
  for (std::size_t i = 0; i < constant_used.size(); ++i) {
    if (!constant_used[i]) {
      return Reader::CorruptAt(
          StrCat("unused constant dictionary entry \"", constants[i], "\""),
          kHeaderSize);
    }
  }
  for (std::size_t i = 0; i < null_used.size(); ++i) {
    if (!null_used[i]) {
      return Reader::CorruptAt(
          StrCat("unused null dictionary entry \"", nulls[i], "\""),
          kHeaderSize);
    }
  }
  return out;
}

Result<ColumnarInstance> DeserializeColumnar(std::string_view bytes) {
  RDX_ASSIGN_OR_RETURN(const Instance instance, Deserialize(bytes));
  return ColumnarInstance::FromInstance(instance);
}

}  // namespace columnar
}  // namespace rdx
