#ifndef RDX_RDX_H_
#define RDX_RDX_H_

/// Umbrella header for the RDX library: reverse data exchange with nulls,
/// after Fagin, Kolaitis, Popa, and Tan, "Reverse Data Exchange: Coping
/// with Nulls" (PODS 2009).

#include "base/metrics.h"
#include "base/rng.h"
#include "base/status.h"
#include "base/strings.h"
#include "base/trace.h"
#include "chase/chase.h"
#include "chase/disjunctive_chase.h"
#include "chase/egd_chase.h"
#include "chase/termination.h"
#include "core/atom.h"
#include "core/core_computation.h"
#include "core/dependency.h"
#include "core/dependency_parser.h"
#include "core/egd.h"
#include "core/fact.h"
#include "core/homomorphism.h"
#include "core/instance.h"
#include "core/instance_parser.h"
#include "core/match.h"
#include "core/query.h"
#include "core/quotient.h"
#include "core/schema.h"
#include "core/term.h"
#include "core/value.h"
#include "generator/enumerator.h"
#include "generator/instance_generator.h"
#include "generator/mapping_generator.h"
#include "generator/scenarios.h"
#include "mapping/compose_syntactic.h"
#include "mapping/composition.h"
#include "mapping/extended.h"
#include "mapping/information_loss.h"
#include "mapping/inverse_checks.h"
#include "mapping/mapping_io.h"
#include "mapping/normalization.h"
#include "mapping/quasi_inverse.h"
#include "mapping/recovery.h"
#include "mapping/report.h"
#include "mapping/reverse_query.h"
#include "mapping/schema_mapping.h"

#endif  // RDX_RDX_H_
