#ifndef RDX_MAPPING_EXTENDED_H_
#define RDX_MAPPING_EXTENDED_H_

#include <vector>

#include "base/status.h"
#include "chase/chase.h"
#include "chase/disjunctive_chase.h"
#include "core/homomorphism.h"
#include "core/instance.h"
#include "mapping/schema_mapping.h"

namespace rdx {

/// Performs data exchange: chase_M(I), the canonical target instance
/// obtained by chasing (I, ∅) with Σ (Section 3.1). By Proposition 3.11
/// this is an extended universal solution for I. Requires a
/// non-disjunctive mapping; Constant and inequality body atoms are allowed.
Result<Instance> ChaseMapping(const SchemaMapping& mapping, const Instance& I,
                              const ChaseOptions& options = {});

/// As ChaseMapping, but returns the full ChaseResult — including the
/// per-round ChaseStats — instead of just the added-facts view. The CLI's
/// `chase --stats` and any caller that wants to report engine statistics
/// should prefer this entry point.
Result<ChaseResult> ChaseMappingWithStats(const SchemaMapping& mapping,
                                          const Instance& I,
                                          const ChaseOptions& options = {});

/// chase_M(I) normalized to its core — the smallest extended universal
/// solution, the preferred materialization in data-exchange practice
/// ("up to homomorphic equivalence" made canonical). Same preconditions
/// as ChaseMapping; the extra cost is the core computation (E3).
Result<Instance> CoreChaseMapping(const SchemaMapping& mapping,
                                  const Instance& I,
                                  const ChaseOptions& options = {});

/// Performs (possibly disjunctive) data exchange: the set chase_M(J) of
/// Section 6 — one instance per completed branch of the disjunctive chase.
/// For a non-disjunctive mapping the set is a singleton.
Result<std::vector<Instance>> DisjunctiveChaseMapping(
    const SchemaMapping& mapping, const Instance& I,
    const DisjunctiveChaseOptions& options = {});

/// J ∈ Sol_M(I): the classical notion, (I, J) ⊨ Σ.
Result<bool> IsSolution(const SchemaMapping& mapping, const Instance& I,
                        const Instance& J, const MatchOptions& options = {});

/// J ∈ eSol_M(I) (Definition 3.2): J is a solution of I w.r.t. the
/// homomorphic extension e(M) = → ∘ M ∘ →.
///
/// Implemented via the chase criterion chase_M(I) → J, which is sound and
/// complete for mappings given by tgds, including tgds with the Constant
/// predicate (the chase is monotone under homomorphisms for those). Fails
/// with FailedPrecondition for mappings using inequalities or disjunction,
/// where the criterion is not valid.
Result<bool> IsExtendedSolution(const SchemaMapping& mapping,
                                const Instance& I, const Instance& J,
                                const ChaseOptions& options = {});

/// J is an extended universal solution for I (Definition 3.5): J ∈ eSol
/// and J → J' for every J' ∈ eSol. Equivalently (Proposition 3.11), J is
/// homomorphically equivalent to chase_M(I). Same preconditions as
/// IsExtendedSolution.
Result<bool> IsExtendedUniversalSolution(const SchemaMapping& mapping,
                                         const Instance& I, const Instance& J,
                                         const ChaseOptions& options = {});

/// I1 →_M I2 (Definition 4.6: eSol_M(I2) ⊆ eSol_M(I1)), decided via
/// Proposition 4.7: chase_M(I1) → chase_M(I2). Requires a tgd mapping
/// (possibly with Constant atoms).
Result<bool> ArrowM(const SchemaMapping& mapping, const Instance& I1,
                    const Instance& I2, const ChaseOptions& options = {});

/// The ground-restricted →_{M,g} (Definition 4.18: Sol_M(I2) ⊆
/// Sol_M(I1) for ground I1, I2), decided by the same chase criterion.
/// Fails if either instance is not ground.
Result<bool> ArrowMGround(const SchemaMapping& mapping, const Instance& I1,
                          const Instance& I2,
                          const ChaseOptions& options = {});

}  // namespace rdx

#endif  // RDX_MAPPING_EXTENDED_H_
