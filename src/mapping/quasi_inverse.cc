#include "mapping/quasi_inverse.h"

#include <algorithm>

#include "analysis/lints.h"
#include "base/metrics.h"
#include "base/strings.h"
#include "base/trace.h"

namespace rdx {
namespace {

// A normalized full tgd: a body plus a single head atom.
struct SingleHeadTgd {
  std::vector<Atom> body;
  Atom head;
};

// Enumerates all set partitions of {0, ..., n-1} as restricted growth
// strings: partition[i] = block index of position i, with block indices
// first-used in increasing order.
void EnumeratePartitions(uint32_t n, std::vector<uint32_t>* current,
                         std::vector<std::vector<uint32_t>>* out) {
  if (current->size() == n) {
    out->push_back(*current);
    return;
  }
  uint32_t max_block = 0;
  for (uint32_t b : *current) max_block = std::max(max_block, b + 1);
  for (uint32_t b = 0; b <= max_block; ++b) {
    current->push_back(b);
    EnumeratePartitions(n, current, out);
    current->pop_back();
  }
}

std::vector<std::vector<uint32_t>> AllPartitions(uint32_t n) {
  std::vector<std::vector<uint32_t>> out;
  std::vector<uint32_t> current;
  EnumeratePartitions(n, &current, &out);
  return out;
}

// True if the head pattern `terms` is compatible with the equality type
// `partition`: equal head variables force their positions into one block.
bool Compatible(const std::vector<Term>& terms,
                const std::vector<uint32_t>& partition) {
  for (std::size_t i = 0; i < terms.size(); ++i) {
    for (std::size_t j = i + 1; j < terms.size(); ++j) {
      if (terms[i] == terms[j] && partition[i] != partition[j]) {
        return false;
      }
    }
  }
  return true;
}

// Block-representative variables z0, z1, ... for a partition. Uses fixed
// interned names so the output is stable and readable.
std::vector<Variable> BlockVars(const std::vector<uint32_t>& partition) {
  uint32_t blocks = 0;
  for (uint32_t b : partition) blocks = std::max(blocks, b + 1);
  std::vector<Variable> out;
  out.reserve(blocks);
  for (uint32_t b = 0; b < blocks; ++b) {
    out.push_back(Variable::Intern(StrCat("z", b)));
  }
  return out;
}

}  // namespace

Result<SchemaMapping> QuasiInverse(const SchemaMapping& mapping) {
  if (!mapping.IsFullTgdMapping()) {
    return Status::FailedPrecondition(
        StrCat("QuasiInverse requires a mapping specified by full s-t tgds "
               "(Theorem 5.1); rdx_lint reports the offending dependencies "
               "as ",
               LintCodeId(LintCode::kNotFullTgd), "/",
               LintCodeId(LintCode::kNotPlainTgd)));
  }
  static obs::Counter& runs = obs::Counter::Get("quasi_inverse.runs");
  static obs::Counter& us = obs::Counter::Get("quasi_inverse.us");
  runs.Increment();
  obs::ScopedTimer timer(&us);

  // Step 1: normalize to single-head tgds, grouped by head relation.
  std::vector<SingleHeadTgd> normalized;
  for (const Dependency& dep : mapping.dependencies()) {
    for (const Atom& head : dep.disjuncts()[0]) {
      for (const Term& t : head.terms()) {
        if (t.IsConstant()) {
          return Status::Unimplemented(
              StrCat("head atom with constant term not supported (lint ",
                     LintCodeId(LintCode::kConstantInHead),
                     "): ", head.ToString()));
        }
      }
      normalized.push_back(SingleHeadTgd{dep.body(), head});
    }
  }

  // Step 2: one disjunctive tgd per (head relation, realizable equality
  // type).
  std::vector<Dependency> reverse_deps;
  std::vector<Relation> head_relations;
  for (const SingleHeadTgd& tgd : normalized) {
    Relation r = tgd.head.relation();
    if (std::find(head_relations.begin(), head_relations.end(), r) ==
        head_relations.end()) {
      head_relations.push_back(r);
    }
  }

  for (Relation target_rel : head_relations) {
    for (const std::vector<uint32_t>& partition :
         AllPartitions(target_rel.arity())) {
      std::vector<Variable> block_vars = BlockVars(partition);

      // Disjuncts from compatible tgds.
      std::vector<std::vector<Atom>> disjuncts;
      for (const SingleHeadTgd& tgd : normalized) {
        if (!(tgd.head.relation() == target_rel)) continue;
        if (!Compatible(tgd.head.terms(), partition)) continue;

        // σ maps each head variable to its block representative; remaining
        // body variables become fresh existentials.
        std::unordered_map<Variable, Term, VariableHash> sigma;
        for (std::size_t i = 0; i < tgd.head.terms().size(); ++i) {
          sigma.emplace(tgd.head.terms()[i].variable(),
                        Term::Var(block_vars[partition[i]]));
        }
        std::vector<Atom> disjunct;
        for (const Atom& body_atom : tgd.body) {
          std::vector<Term> terms;
          terms.reserve(body_atom.terms().size());
          for (const Term& t : body_atom.terms()) {
            if (t.IsConstant()) {
              terms.push_back(t);
              continue;
            }
            auto it = sigma.find(t.variable());
            if (it == sigma.end()) {
              it = sigma.emplace(t.variable(), Term::Var(Variable::Fresh()))
                       .first;
            }
            terms.push_back(it->second);
          }
          RDX_ASSIGN_OR_RETURN(
              Atom mapped, Atom::Relational(body_atom.relation(),
                                            std::move(terms)));
          // Skip duplicate atoms within a disjunct.
          if (std::find(disjunct.begin(), disjunct.end(), mapped) ==
              disjunct.end()) {
            disjunct.push_back(std::move(mapped));
          }
        }
        // Skip duplicate disjuncts.
        if (std::find(disjuncts.begin(), disjuncts.end(), disjunct) ==
            disjuncts.end()) {
          disjuncts.push_back(std::move(disjunct));
        }
      }
      if (disjuncts.empty()) continue;  // type unrealizable by the chase

      // Premise: T(z_{ε(0)}, ..., z_{ε(m-1)}) plus pairwise block
      // inequalities.
      std::vector<Term> premise_terms;
      premise_terms.reserve(partition.size());
      for (uint32_t b : partition) {
        premise_terms.push_back(Term::Var(block_vars[b]));
      }
      RDX_ASSIGN_OR_RETURN(
          Atom premise,
          Atom::Relational(target_rel, std::move(premise_terms)));
      std::vector<Atom> body;
      body.push_back(std::move(premise));
      for (std::size_t a = 0; a < block_vars.size(); ++a) {
        for (std::size_t b = a + 1; b < block_vars.size(); ++b) {
          body.push_back(Atom::Inequality(Term::Var(block_vars[a]),
                                          Term::Var(block_vars[b])));
        }
      }

      RDX_ASSIGN_OR_RETURN(
          Dependency dep,
          Dependency::Make(std::move(body), std::move(disjuncts)));
      reverse_deps.push_back(std::move(dep));
    }
  }

  if (obs::TracingEnabled()) {
    obs::EmitTrace(obs::TraceEvent("quasi_inverse.done")
                       .Add("dependencies_in", mapping.dependencies().size())
                       .Add("dependencies_out", reverse_deps.size())
                       .Add("us", timer.ElapsedMicros()));
  }
  return SchemaMapping::Make(mapping.target(), mapping.source(),
                             std::move(reverse_deps));
}

}  // namespace rdx
