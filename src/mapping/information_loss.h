#ifndef RDX_MAPPING_INFORMATION_LOSS_H_
#define RDX_MAPPING_INFORMATION_LOSS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "base/status.h"
#include "mapping/inverse_checks.h"
#include "mapping/schema_mapping.h"

namespace rdx {

/// Exact measurement of the information loss →_M \ → (Definition 4.5,
/// Corollary 4.14) of a tgd mapping over a finite universe of source
/// instances: counts, over all ordered pairs from `family`, how many lie
/// in →_M, how many in → (= e(Id)), and how many in the difference.
struct InformationLossReport {
  uint64_t total_pairs = 0;    // |family|²
  uint64_t arrow_m_pairs = 0;  // |→_M ∩ family²|
  uint64_t e_id_pairs = 0;     // |→  ∩ family²|
  uint64_t loss_pairs = 0;     // |(→_M \ →) ∩ family²|

  /// Up to `max_witnesses` pairs from →_M \ →.
  std::vector<PairCounterexample> witnesses;

  /// Fraction of pairs lost: loss_pairs / total_pairs.
  double LossDensity() const {
    return total_pairs == 0
               ? 0.0
               : static_cast<double>(loss_pairs) /
                     static_cast<double>(total_pairs);
  }
};

Result<InformationLossReport> MeasureInformationLoss(
    const SchemaMapping& mapping, const std::vector<Instance>& family,
    std::size_t max_witnesses = 4, const ChaseOptions& options = {});

/// The ground-framework counterpart (Section 4.2, Definition 4.17 /
/// Proposition 4.19): information loss →_{M,g} \ Id over the GROUND
/// members of `family`, where Id is plain containment. Non-ground members
/// are skipped (their count is reported in `skipped_non_ground`).
///
/// Comparing this against MeasureInformationLoss on the same family makes
/// the paper's separation quantitative: e.g. the TwoNullable mapping
/// (Theorem 3.15(2)) has ZERO ground loss (it is invertible) but positive
/// extended loss (it is not extended invertible).
struct GroundInformationLossReport {
  uint64_t total_pairs = 0;      // (#ground members)²
  uint64_t arrow_mg_pairs = 0;   // |→_{M,g} ∩ ground²|
  uint64_t id_pairs = 0;         // |⊆ ∩ ground²|
  uint64_t loss_pairs = 0;       // |(→_{M,g} \ Id) ∩ ground²|
  uint64_t skipped_non_ground = 0;
  std::vector<PairCounterexample> witnesses;

  double LossDensity() const {
    return total_pairs == 0
               ? 0.0
               : static_cast<double>(loss_pairs) /
                     static_cast<double>(total_pairs);
  }
};

Result<GroundInformationLossReport> MeasureGroundInformationLoss(
    const SchemaMapping& mapping, const std::vector<Instance>& family,
    std::size_t max_witnesses = 4, const ChaseOptions& options = {});

/// Corollary 4.15 over a family: M is extended invertible iff →_M = →
/// (no information loss). Returns true iff no loss pair exists within the
/// family (exhaustive evidence up to the family; a loss pair is a proof of
/// non-extended-invertibility).
Result<bool> IsExtendedInvertibleOn(const SchemaMapping& mapping,
                                    const std::vector<Instance>& family,
                                    const ChaseOptions& options = {});

/// Comparison of two mappings over the same source schema (Definition
/// 6.6): M1 is less lossy than M2 iff →_M1 ⊆ →_M2.
struct LessLossyReport {
  /// →_M1 ⊆ →_M2 held on every pair from the family.
  bool less_lossy = false;
  /// A pair in →_M1 \ →_M2 (refuting less-lossiness), if any.
  std::optional<PairCounterexample> violation;
  /// A pair in →_M2 \ →_M1 (witnessing strictness), if any.
  std::optional<PairCounterexample> strict_witness;

  bool StrictlyLessLossy() const {
    return less_lossy && strict_witness.has_value();
  }
};

Result<LessLossyReport> CompareLossiness(const SchemaMapping& m1,
                                         const SchemaMapping& m2,
                                         const std::vector<Instance>& family,
                                         const ChaseOptions& options = {});

/// The Theorem 6.8 criterion for →_M1 ⊆ →_M2, checked procedurally over
/// `family` with maximum extended recoveries M1', M2' given by disjunctive
/// tgds: for every I and every V1 ∈ chase_M1'(chase_M1(I)) there is
/// V2 ∈ chase_M2'(chase_M2(I)) with V2 → V1. Returns true iff the
/// criterion holds on every family member.
Result<bool> LessLossyViaRecoveries(
    const SchemaMapping& m1, const SchemaMapping& m1_recovery,
    const SchemaMapping& m2, const SchemaMapping& m2_recovery,
    const std::vector<Instance>& family, const ChaseOptions& chase_options = {},
    const DisjunctiveChaseOptions& disjunctive_options = {});

}  // namespace rdx

#endif  // RDX_MAPPING_INFORMATION_LOSS_H_
