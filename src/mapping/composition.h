#ifndef RDX_MAPPING_COMPOSITION_H_
#define RDX_MAPPING_COMPOSITION_H_

#include <vector>

#include "base/status.h"
#include "mapping/extended.h"
#include "mapping/schema_mapping.h"

namespace rdx {

/// The reverse round trip chase_M'(chase_M(I)): forward exchange with M,
/// then reverse (possibly disjunctive) exchange with M'. Returns the set of
/// recovered source instances {V1, ..., Vk} of Section 6 (a singleton when
/// M' has no disjunction).
///
/// Preconditions: M is a non-disjunctive mapping from S to T; M' is a
/// mapping from T to S (validated structurally: M'.source() must equal...
/// share M.target()'s relations and vice versa — enforced by instance
/// conformance checks).
Result<std::vector<Instance>> ReverseRoundTrip(
    const SchemaMapping& mapping, const SchemaMapping& reverse,
    const Instance& I, const ChaseOptions& chase_options = {},
    const DisjunctiveChaseOptions& disjunctive_options = {});

/// Decides (I, K) ∈ e(M) ∘ e(M') (the composition of homomorphic
/// extensions central to Sections 3–4) via the procedural criterion:
///
///   some V ∈ chase_M'(chase_M(I)) has V → K.
///
/// The criterion is always sound (a witnessing branch exhibits the
/// composition membership). It is also complete — hence an exact decision
/// procedure — when M is a tgd mapping (Constant atoms allowed, no
/// inequalities) and M' is a (disjunctive) tgd mapping without
/// inequalities, by the universality of the (disjunctive) chase and the
/// absorption of → on both sides of e(M) = → ∘ M ∘ →. For reverse
/// mappings with inequality bodies (e.g. quasi-inverse outputs) the
/// criterion is exactly the procedural composition used by the paper's
/// universal-faithfulness machinery (Theorems 6.2/6.5).
Result<bool> InExtendedComposition(
    const SchemaMapping& mapping, const SchemaMapping& reverse,
    const Instance& I, const Instance& K,
    const ChaseOptions& chase_options = {},
    const DisjunctiveChaseOptions& disjunctive_options = {});

/// The quotient-closed reverse branch set: the union over all
/// null-quotients J/π of J = chase_M(I) of the branch sets chase_M'(J/π),
/// deduplicated up to homomorphic equivalence.
///
/// For reverse mappings whose bodies use inequalities or the Constant
/// predicate, the syntactic disjunctive chase of J alone under-approximates
/// e(M') — a null that "could equal" a constant is treated as distinct and
/// the wrong premise fires (see quotient.h). Closing over quotients
/// restores completeness: (I, K) ∈ e(M) ∘ e(M') iff some closed branch
/// maps homomorphically into K. Without such builtins the closure adds
/// nothing beyond hom-equivalent duplicates.
Result<std::vector<Instance>> QuotientClosedReverseBranches(
    const SchemaMapping& mapping, const SchemaMapping& reverse,
    const Instance& I, const ChaseOptions& chase_options = {},
    const DisjunctiveChaseOptions& disjunctive_options = {});

}  // namespace rdx

#endif  // RDX_MAPPING_COMPOSITION_H_
