#ifndef RDX_MAPPING_SCHEMA_MAPPING_H_
#define RDX_MAPPING_SCHEMA_MAPPING_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "core/dependency.h"
#include "core/instance.h"
#include "core/match.h"
#include "core/schema.h"

namespace rdx {

/// A schema mapping M = (S, T, Σ) (Section 2): a source schema, a target
/// schema, and a set of dependencies whose bodies are over S and heads over
/// T. "Reverse" mappings (T, S, Σ') are just schema mappings with the roles
/// swapped; nothing in this class is specific to direction.
///
/// Σ may contain plain s-t tgds, tgds with constants/inequalities, and
/// disjunctive tgds — the full language zoo of the paper.
class SchemaMapping {
 public:
  SchemaMapping() = default;

  /// Builds and validates a mapping: S and T must be disjoint, every
  /// relational body atom must be over S, and every head atom over T.
  static Result<SchemaMapping> Make(Schema source, Schema target,
                                    std::vector<Dependency> dependencies);

  /// Parses the dependencies from text (';'-separated; see
  /// dependency_parser.h) and builds the mapping.
  static Result<SchemaMapping> Parse(Schema source, Schema target,
                                     std::string_view dependencies_text);

  /// Like Parse but aborts on error; for literals in tests and examples.
  static SchemaMapping MustParse(Schema source, Schema target,
                                 std::string_view dependencies_text);

  const Schema& source() const { return source_; }
  const Schema& target() const { return target_; }
  const std::vector<Dependency>& dependencies() const { return dependencies_; }

  /// True if every dependency is a plain tgd (single disjunct, no builtin
  /// body atoms) — the paper's "schema mapping specified by s-t tgds".
  bool IsTgdMapping() const;

  /// True if additionally no dependency has existential variables — "full
  /// s-t tgds".
  bool IsFullTgdMapping() const;

  bool UsesDisjunction() const;
  bool UsesInequalities() const;
  bool UsesConstantPredicate() const;

  /// (I, J) ⊨ Σ. Validates that I conforms to S and J to T, then checks
  /// satisfaction over the combined instance (schemas are disjoint, so the
  /// union is unambiguous).
  Result<bool> Satisfied(const Instance& source_instance,
                         const Instance& target_instance,
                         const MatchOptions& options = {}) const;

  /// Multi-line rendering: schemas then dependencies.
  std::string ToString() const;

 private:
  SchemaMapping(Schema source, Schema target,
                std::vector<Dependency> dependencies)
      : source_(std::move(source)),
        target_(std::move(target)),
        dependencies_(std::move(dependencies)) {}

  Schema source_;
  Schema target_;
  std::vector<Dependency> dependencies_;
};

}  // namespace rdx

#endif  // RDX_MAPPING_SCHEMA_MAPPING_H_
