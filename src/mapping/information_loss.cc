#include "mapping/information_loss.h"

#include "base/metrics.h"
#include "base/trace.h"
#include "core/fact_index.h"
#include "core/homomorphism.h"
#include "mapping/composition.h"
#include "mapping/extended.h"

namespace rdx {
namespace {

// Index every member once up front: the O(|family|²) pair scans below
// probe each instance as a homomorphism target |family| times, and the
// index-less HasHomomorphism overload would rebuild its index on every
// probe.
std::vector<FactIndex> IndexAll(const std::vector<Instance>& instances) {
  std::vector<FactIndex> out;
  out.reserve(instances.size());
  for (const Instance& I : instances) {
    out.emplace_back(I);
  }
  return out;
}

// The pair test `from → to` against a prebuilt index over `to`.
Result<bool> HasHomInto(const Instance& from, const Instance& to,
                        const FactIndex& to_index) {
  RDX_ASSIGN_OR_RETURN(std::optional<ValueMap> h,
                       FindHomomorphism(from, to, to_index));
  return h.has_value();
}

// Pre-chases every family member once; the →_M tests then reduce to
// homomorphism checks between cached chase results.
Result<std::vector<Instance>> ChaseFamily(const SchemaMapping& mapping,
                                          const std::vector<Instance>& family,
                                          const ChaseOptions& options) {
  std::vector<Instance> out;
  out.reserve(family.size());
  for (const Instance& I : family) {
    RDX_ASSIGN_OR_RETURN(Instance c, ChaseMapping(mapping, I, options));
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace

Result<InformationLossReport> MeasureInformationLoss(
    const SchemaMapping& mapping, const std::vector<Instance>& family,
    std::size_t max_witnesses, const ChaseOptions& options) {
  static obs::Counter& runs = obs::Counter::Get("information_loss.runs");
  static obs::Counter& pairs = obs::Counter::Get("information_loss.pairs");
  static obs::Counter& us = obs::Counter::Get("information_loss.us");
  runs.Increment();
  pairs.Add(static_cast<uint64_t>(family.size()) * family.size());
  obs::ScopedTimer timer(&us);
  RDX_ASSIGN_OR_RETURN(std::vector<Instance> chased,
                       ChaseFamily(mapping, family, options));
  InformationLossReport report;
  report.total_pairs =
      static_cast<uint64_t>(family.size()) * family.size();
  const std::vector<FactIndex> chased_index = IndexAll(chased);
  const std::vector<FactIndex> family_index = IndexAll(family);
  for (std::size_t i = 0; i < family.size(); ++i) {
    for (std::size_t j = 0; j < family.size(); ++j) {
      RDX_ASSIGN_OR_RETURN(
          bool in_arrow_m, HasHomInto(chased[i], chased[j], chased_index[j]));
      RDX_ASSIGN_OR_RETURN(
          bool in_e_id, HasHomInto(family[i], family[j], family_index[j]));
      if (in_arrow_m) ++report.arrow_m_pairs;
      if (in_e_id) ++report.e_id_pairs;
      if (in_arrow_m && !in_e_id) {
        ++report.loss_pairs;
        if (report.witnesses.size() < max_witnesses) {
          report.witnesses.push_back(
              PairCounterexample{family[i], family[j]});
        }
      }
    }
  }
  if (obs::TracingEnabled()) {
    obs::EmitTrace(obs::TraceEvent("information_loss.done")
                       .Add("family", family.size())
                       .Add("arrow_m_pairs", report.arrow_m_pairs)
                       .Add("e_id_pairs", report.e_id_pairs)
                       .Add("loss_pairs", report.loss_pairs)
                       .Add("us", timer.ElapsedMicros()));
  }
  return report;
}

Result<GroundInformationLossReport> MeasureGroundInformationLoss(
    const SchemaMapping& mapping, const std::vector<Instance>& family,
    std::size_t max_witnesses, const ChaseOptions& options) {
  GroundInformationLossReport report;
  std::vector<const Instance*> ground;
  for (const Instance& I : family) {
    if (I.IsGround()) {
      ground.push_back(&I);
    } else {
      ++report.skipped_non_ground;
    }
  }
  std::vector<Instance> chased;
  chased.reserve(ground.size());
  for (const Instance* I : ground) {
    RDX_ASSIGN_OR_RETURN(Instance c, ChaseMapping(mapping, *I, options));
    chased.push_back(std::move(c));
  }
  report.total_pairs = static_cast<uint64_t>(ground.size()) * ground.size();
  const std::vector<FactIndex> chased_index = IndexAll(chased);
  for (std::size_t i = 0; i < ground.size(); ++i) {
    for (std::size_t j = 0; j < ground.size(); ++j) {
      // For ground instances, Sol(I2) ⊆ Sol(I1) iff chase(I1) → chase(I2)
      // (the →_{M,g} criterion of Proposition 4.19).
      RDX_ASSIGN_OR_RETURN(
          bool in_arrow_mg, HasHomInto(chased[i], chased[j], chased_index[j]));
      bool in_id = ground[i]->SubsetOf(*ground[j]);
      if (in_arrow_mg) ++report.arrow_mg_pairs;
      if (in_id) ++report.id_pairs;
      if (in_arrow_mg && !in_id) {
        ++report.loss_pairs;
        if (report.witnesses.size() < max_witnesses) {
          report.witnesses.push_back(
              PairCounterexample{*ground[i], *ground[j]});
        }
      }
    }
  }
  return report;
}

Result<bool> IsExtendedInvertibleOn(const SchemaMapping& mapping,
                                    const std::vector<Instance>& family,
                                    const ChaseOptions& options) {
  RDX_ASSIGN_OR_RETURN(
      InformationLossReport report,
      MeasureInformationLoss(mapping, family, /*max_witnesses=*/1, options));
  return report.loss_pairs == 0;
}

Result<LessLossyReport> CompareLossiness(const SchemaMapping& m1,
                                         const SchemaMapping& m2,
                                         const std::vector<Instance>& family,
                                         const ChaseOptions& options) {
  RDX_ASSIGN_OR_RETURN(std::vector<Instance> chased1,
                       ChaseFamily(m1, family, options));
  RDX_ASSIGN_OR_RETURN(std::vector<Instance> chased2,
                       ChaseFamily(m2, family, options));
  LessLossyReport report;
  report.less_lossy = true;
  const std::vector<FactIndex> index1 = IndexAll(chased1);
  const std::vector<FactIndex> index2 = IndexAll(chased2);
  for (std::size_t i = 0; i < family.size(); ++i) {
    for (std::size_t j = 0; j < family.size(); ++j) {
      RDX_ASSIGN_OR_RETURN(bool in_m1,
                           HasHomInto(chased1[i], chased1[j], index1[j]));
      RDX_ASSIGN_OR_RETURN(bool in_m2,
                           HasHomInto(chased2[i], chased2[j], index2[j]));
      if (in_m1 && !in_m2 && !report.violation.has_value()) {
        report.less_lossy = false;
        report.violation = PairCounterexample{family[i], family[j]};
      }
      if (in_m2 && !in_m1 && !report.strict_witness.has_value()) {
        report.strict_witness = PairCounterexample{family[i], family[j]};
      }
    }
  }
  return report;
}

Result<bool> LessLossyViaRecoveries(
    const SchemaMapping& m1, const SchemaMapping& m1_recovery,
    const SchemaMapping& m2, const SchemaMapping& m2_recovery,
    const std::vector<Instance>& family, const ChaseOptions& chase_options,
    const DisjunctiveChaseOptions& disjunctive_options) {
  for (const Instance& I : family) {
    RDX_ASSIGN_OR_RETURN(
        std::vector<Instance> branches1,
        ReverseRoundTrip(m1, m1_recovery, I, chase_options,
                         disjunctive_options));
    RDX_ASSIGN_OR_RETURN(
        std::vector<Instance> branches2,
        ReverseRoundTrip(m2, m2_recovery, I, chase_options,
                         disjunctive_options));
    for (const Instance& v1 : branches1) {
      bool covered = false;
      for (const Instance& v2 : branches2) {
        RDX_ASSIGN_OR_RETURN(bool hom, HasHomomorphism(v2, v1));
        if (hom) {
          covered = true;
          break;
        }
      }
      if (!covered) return false;
    }
  }
  return true;
}

}  // namespace rdx
