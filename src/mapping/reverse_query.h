#ifndef RDX_MAPPING_REVERSE_QUERY_H_
#define RDX_MAPPING_REVERSE_QUERY_H_

#include "base/status.h"
#include "core/query.h"
#include "mapping/composition.h"
#include "mapping/schema_mapping.h"

namespace rdx {

/// Reverse query answering (Section 6.2, Theorem 6.5): the certain answers
/// certain_{e(M)∘e(M')}(q, I) of a conjunctive query q over the SOURCE
/// schema, computed as
///
///   ( ⋂_{K ∈ chase_M'(chase_M(I))} q(K) )↓
///
/// where M' is a maximum extended recovery of M specified by disjunctive
/// tgds. The query's relations must belong to M's source schema.
Result<TupleSet> ReverseCertainAnswers(
    const SchemaMapping& mapping, const SchemaMapping& recovery,
    const ConjunctiveQuery& query, const Instance& I,
    const ChaseOptions& chase_options = {},
    const DisjunctiveChaseOptions& disjunctive_options = {});

/// The schema-evolution scenario: the original source instance is gone and
/// only a target instance J (the result of a prior exchange with M) is
/// available. Computes ( ⋂_{K ∈ chase_M'(J)} q(K) )↓.
Result<TupleSet> ReverseCertainAnswersFromTarget(
    const SchemaMapping& recovery, const ConjunctiveQuery& query,
    const Instance& J,
    const DisjunctiveChaseOptions& disjunctive_options = {});

/// Forward certain answers (Definition 6.3 in its classical use): for a
/// conjunctive query q over the TARGET schema,
/// certain_M(q, I) = ( q(chase_M(I)) )↓ — the certain-answer semantics is
/// computable on the canonical universal solution [the paper's reference
/// FKMP, Data Exchange: Semantics and Query Answering].
Result<TupleSet> ForwardCertainAnswers(const SchemaMapping& mapping,
                                       const ConjunctiveQuery& query,
                                       const Instance& I,
                                       const ChaseOptions& options = {});

/// q(I)↓ — the null-free answers of q on I, the yardstick of Theorem 6.4:
/// for an extended inverse M' of M, the reverse certain answers equal
/// q(I)↓ for every source I and conjunctive query q.
Result<TupleSet> NullFreeAnswers(const ConjunctiveQuery& query,
                                 const Instance& I,
                                 const MatchOptions& options = {});

}  // namespace rdx

#endif  // RDX_MAPPING_REVERSE_QUERY_H_
