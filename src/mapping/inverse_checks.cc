#include "mapping/inverse_checks.h"

#include <utility>
#include <vector>

#include "base/parallel_for.h"
#include "core/homomorphism.h"

namespace rdx {

Result<std::optional<PairCounterexample>> CheckHomomorphismProperty(
    const SchemaMapping& mapping, const std::vector<Instance>& family,
    const ChaseOptions& options) {
  // Pre-chase every member once. Kept sequential across members so fresh
  // nulls are allocated in a reproducible order; each chase fans its own
  // trigger enumeration out over options.num_threads.
  std::vector<Instance> chased;
  chased.reserve(family.size());
  for (const Instance& I : family) {
    RDX_ASSIGN_OR_RETURN(Instance c, ChaseMapping(mapping, I, options));
    chased.push_back(std::move(c));
  }
  // Race the ordered-pair scans; the winner is the first pair (in the
  // sequential loop-nest order) witnessing chase(I1) → chase(I2) without
  // I1 → I2, so the counterexample is thread-count independent.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(family.size() * family.size());
  for (std::size_t i = 0; i < family.size(); ++i) {
    for (std::size_t j = 0; j < family.size(); ++j) {
      if (i != j) pairs.emplace_back(i, j);
    }
  }
  RDX_ASSIGN_OR_RETURN(
      std::optional<std::size_t> witness,
      par::RaceFirstWitness(
          options.num_threads, pairs.size(),
          [&](std::size_t t) -> Result<bool> {
            const auto& [i, j] = pairs[t];
            RDX_ASSIGN_OR_RETURN(bool chase_hom,
                                 HasHomomorphism(chased[i], chased[j]));
            if (!chase_hom) return false;
            RDX_ASSIGN_OR_RETURN(bool source_hom,
                                 HasHomomorphism(family[i], family[j]));
            return !source_hom;
          }));
  if (witness.has_value()) {
    return std::optional<PairCounterexample>(PairCounterexample{
        family[pairs[*witness].first], family[pairs[*witness].second]});
  }
  return std::optional<PairCounterexample>();
}

Result<std::optional<PairCounterexample>> CheckSubsetProperty(
    const SchemaMapping& mapping, const std::vector<Instance>& family,
    const ChaseOptions& options) {
  std::vector<const Instance*> ground;
  for (const Instance& I : family) {
    if (I.IsGround()) ground.push_back(&I);
  }
  std::vector<Instance> chased;
  chased.reserve(ground.size());
  for (const Instance* I : ground) {
    RDX_ASSIGN_OR_RETURN(Instance c, ChaseMapping(mapping, *I, options));
    chased.push_back(std::move(c));
  }
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(ground.size() * ground.size());
  for (std::size_t i = 0; i < ground.size(); ++i) {
    for (std::size_t j = 0; j < ground.size(); ++j) {
      if (i != j) pairs.emplace_back(i, j);
    }
  }
  RDX_ASSIGN_OR_RETURN(
      std::optional<std::size_t> witness,
      par::RaceFirstWitness(
          options.num_threads, pairs.size(),
          [&](std::size_t t) -> Result<bool> {
            const auto& [i, j] = pairs[t];
            // For ground instances, Sol(I2) ⊆ Sol(I1) iff
            // chase(I1) → chase(I2).
            RDX_ASSIGN_OR_RETURN(bool sol_containment,
                                 HasHomomorphism(chased[i], chased[j]));
            if (!sol_containment) return false;
            return !ground[i]->SubsetOf(*ground[j]);
          }));
  if (witness.has_value()) {
    return std::optional<PairCounterexample>(
        PairCounterexample{*ground[pairs[*witness].first],
                           *ground[pairs[*witness].second]});
  }
  return std::optional<PairCounterexample>();
}

Result<bool> ChaseInverseHoldsFor(const SchemaMapping& mapping,
                                  const SchemaMapping& reverse,
                                  const Instance& I,
                                  const ChaseOptions& options) {
  RDX_ASSIGN_OR_RETURN(Instance forward, ChaseMapping(mapping, I, options));
  RDX_ASSIGN_OR_RETURN(Instance back, ChaseMapping(reverse, forward, options));
  return AreHomEquivalent(I, back);
}

Result<std::optional<Instance>> CheckChaseInverse(
    const SchemaMapping& mapping, const SchemaMapping& reverse,
    const std::vector<Instance>& family, const ChaseOptions& options) {
  // Race the per-member round trips. Concurrent chases interleave their
  // fresh-null draws from the global counter, but every downstream
  // comparison is up to homomorphic equivalence, so the verdicts — and
  // the first failing member returned — are thread-count independent.
  ChaseOptions member_options = options;
  member_options.num_threads = 1;
  RDX_ASSIGN_OR_RETURN(
      std::optional<std::size_t> witness,
      par::RaceFirstWitness(options.num_threads, family.size(),
                            [&](std::size_t t) -> Result<bool> {
                              RDX_ASSIGN_OR_RETURN(
                                  bool holds,
                                  ChaseInverseHoldsFor(mapping, reverse,
                                                       family[t],
                                                       member_options));
                              return !holds;
                            }));
  if (witness.has_value()) return std::optional<Instance>(family[*witness]);
  return std::optional<Instance>();
}

Result<bool> Captures(const SchemaMapping& mapping, const Instance& J,
                      const Instance& I, const std::vector<Instance>& family,
                      const ChaseOptions& options) {
  RDX_ASSIGN_OR_RETURN(bool in_esol, IsExtendedSolution(mapping, I, J, options));
  if (!in_esol) return false;
  for (const Instance& K : family) {
    RDX_ASSIGN_OR_RETURN(bool j_solves_k,
                         IsExtendedSolution(mapping, K, J, options));
    if (!j_solves_k) continue;
    RDX_ASSIGN_OR_RETURN(bool k_to_i, HasHomomorphism(K, I));
    if (!k_to_i) return false;
  }
  return true;
}

}  // namespace rdx
