#include "mapping/inverse_checks.h"

#include "core/homomorphism.h"

namespace rdx {

Result<std::optional<PairCounterexample>> CheckHomomorphismProperty(
    const SchemaMapping& mapping, const std::vector<Instance>& family,
    const ChaseOptions& options) {
  // Pre-chase every member once.
  std::vector<Instance> chased;
  chased.reserve(family.size());
  for (const Instance& I : family) {
    RDX_ASSIGN_OR_RETURN(Instance c, ChaseMapping(mapping, I, options));
    chased.push_back(std::move(c));
  }
  for (std::size_t i = 0; i < family.size(); ++i) {
    for (std::size_t j = 0; j < family.size(); ++j) {
      if (i == j) continue;
      RDX_ASSIGN_OR_RETURN(bool chase_hom,
                           HasHomomorphism(chased[i], chased[j]));
      if (!chase_hom) continue;
      RDX_ASSIGN_OR_RETURN(bool source_hom,
                           HasHomomorphism(family[i], family[j]));
      if (!source_hom) {
        return std::optional<PairCounterexample>(
            PairCounterexample{family[i], family[j]});
      }
    }
  }
  return std::optional<PairCounterexample>();
}

Result<std::optional<PairCounterexample>> CheckSubsetProperty(
    const SchemaMapping& mapping, const std::vector<Instance>& family,
    const ChaseOptions& options) {
  std::vector<const Instance*> ground;
  for (const Instance& I : family) {
    if (I.IsGround()) ground.push_back(&I);
  }
  std::vector<Instance> chased;
  chased.reserve(ground.size());
  for (const Instance* I : ground) {
    RDX_ASSIGN_OR_RETURN(Instance c, ChaseMapping(mapping, *I, options));
    chased.push_back(std::move(c));
  }
  for (std::size_t i = 0; i < ground.size(); ++i) {
    for (std::size_t j = 0; j < ground.size(); ++j) {
      if (i == j) continue;
      // For ground instances, Sol(I2) ⊆ Sol(I1) iff chase(I1) → chase(I2).
      RDX_ASSIGN_OR_RETURN(bool sol_containment,
                           HasHomomorphism(chased[i], chased[j]));
      if (!sol_containment) continue;
      if (!ground[i]->SubsetOf(*ground[j])) {
        return std::optional<PairCounterexample>(
            PairCounterexample{*ground[i], *ground[j]});
      }
    }
  }
  return std::optional<PairCounterexample>();
}

Result<bool> ChaseInverseHoldsFor(const SchemaMapping& mapping,
                                  const SchemaMapping& reverse,
                                  const Instance& I,
                                  const ChaseOptions& options) {
  RDX_ASSIGN_OR_RETURN(Instance forward, ChaseMapping(mapping, I, options));
  RDX_ASSIGN_OR_RETURN(Instance back, ChaseMapping(reverse, forward, options));
  return AreHomEquivalent(I, back);
}

Result<std::optional<Instance>> CheckChaseInverse(
    const SchemaMapping& mapping, const SchemaMapping& reverse,
    const std::vector<Instance>& family, const ChaseOptions& options) {
  for (const Instance& I : family) {
    RDX_ASSIGN_OR_RETURN(bool holds,
                         ChaseInverseHoldsFor(mapping, reverse, I, options));
    if (!holds) return std::optional<Instance>(I);
  }
  return std::optional<Instance>();
}

Result<bool> Captures(const SchemaMapping& mapping, const Instance& J,
                      const Instance& I, const std::vector<Instance>& family,
                      const ChaseOptions& options) {
  RDX_ASSIGN_OR_RETURN(bool in_esol, IsExtendedSolution(mapping, I, J, options));
  if (!in_esol) return false;
  for (const Instance& K : family) {
    RDX_ASSIGN_OR_RETURN(bool j_solves_k,
                         IsExtendedSolution(mapping, K, J, options));
    if (!j_solves_k) continue;
    RDX_ASSIGN_OR_RETURN(bool k_to_i, HasHomomorphism(K, I));
    if (!k_to_i) return false;
  }
  return true;
}

}  // namespace rdx
