#ifndef RDX_MAPPING_INVERSE_CHECKS_H_
#define RDX_MAPPING_INVERSE_CHECKS_H_

#include <optional>
#include <vector>

#include "base/status.h"
#include "mapping/extended.h"
#include "mapping/schema_mapping.h"

namespace rdx {

/// A pair of source instances witnessing the failure of a property.
struct PairCounterexample {
  Instance i1;
  Instance i2;
};

/// Checks the homomorphism property (Definition 3.12) over the given family
/// of source instances: for every pair (I1, I2) from `family`,
/// chase_M(I1) → chase_M(I2) must imply I1 → I2. Returns a counterexample
/// pair if one exists within the family, nullopt otherwise.
///
/// By Theorem 3.13 the property (over all instances) is equivalent to
/// extended invertibility; a counterexample over any family is therefore a
/// proof of non-extended-invertibility, while nullopt over a bounded
/// family is evidence (exhaustive up to the family's size bound).
Result<std::optional<PairCounterexample>> CheckHomomorphismProperty(
    const SchemaMapping& mapping, const std::vector<Instance>& family,
    const ChaseOptions& options = {});

/// Checks the subset property of [FKPT, Quasi-inverses] over a family of
/// GROUND instances: Sol_M(I2) ⊆ Sol_M(I1) must imply I1 ⊆ I2. The subset
/// property (over all ground instances) characterizes classical
/// invertibility; Theorem 3.15(1) rests on homomorphism property ⟹ subset
/// property. Non-ground members of `family` are skipped.
Result<std::optional<PairCounterexample>> CheckSubsetProperty(
    const SchemaMapping& mapping, const std::vector<Instance>& family,
    const ChaseOptions& options = {});

/// True if I and chase_M'(chase_M(I)) are homomorphically equivalent — the
/// per-instance condition of a chase-inverse (Definition 3.16). M' must be
/// non-disjunctive (tgds, possibly with Constant atoms, as discussed after
/// Theorem 3.17).
Result<bool> ChaseInverseHoldsFor(const SchemaMapping& mapping,
                                  const SchemaMapping& reverse,
                                  const Instance& I,
                                  const ChaseOptions& options = {});

/// Checks Definition 3.16 over a family of source instances; returns the
/// first I in the family violating homomorphic equivalence of I and
/// chase_M'(chase_M(I)), or nullopt. By Theorem 3.17, a violation proves
/// that M' is not an extended inverse of M.
Result<std::optional<Instance>> CheckChaseInverse(
    const SchemaMapping& mapping, const SchemaMapping& reverse,
    const std::vector<Instance>& family, const ChaseOptions& options = {});

/// Checks whether target instance J captures source instance I for M
/// (Definition 3.9), with the universal quantifier of condition (b)
/// bounded to `family`: (a) J ∈ eSol_M(I); (b) for every K in `family`
/// with J ∈ eSol_M(K), K → I.
Result<bool> Captures(const SchemaMapping& mapping, const Instance& J,
                      const Instance& I, const std::vector<Instance>& family,
                      const ChaseOptions& options = {});

}  // namespace rdx

#endif  // RDX_MAPPING_INVERSE_CHECKS_H_
