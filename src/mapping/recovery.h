#ifndef RDX_MAPPING_RECOVERY_H_
#define RDX_MAPPING_RECOVERY_H_

#include <optional>
#include <string>
#include <vector>

#include "base/status.h"
#include "mapping/composition.h"
#include "mapping/schema_mapping.h"

namespace rdx {

/// Checks that M' is an extended recovery of M (Definition 4.3) over the
/// given family: (I, I) ∈ e(M) ∘ e(M') for every I in `family`. Returns
/// the first violating I, or nullopt. A violation proves M' is not an
/// extended recovery; nullopt is exhaustive evidence up to the family.
Result<std::optional<Instance>> CheckExtendedRecovery(
    const SchemaMapping& mapping, const SchemaMapping& reverse,
    const std::vector<Instance>& family, const ChaseOptions& chase_options = {},
    const DisjunctiveChaseOptions& disjunctive_options = {});

/// A pair witnessing e(M) ∘ e(M') ≠ →_M (Theorem 4.13).
struct MaxRecoveryMismatch {
  Instance i1;
  Instance i2;
  bool in_composition = false;  // (i1, i2) ∈ e(M) ∘ e(M') (procedurally)
  bool in_arrow_m = false;      // i1 →_M i2

  std::string ToString() const;
};

/// Checks Theorem 4.13's criterion for M' being a maximum extended
/// recovery of M: e(M) ∘ e(M') = →_M, over all ordered pairs from
/// `family`. Returns the first mismatching pair, or nullopt.
Result<std::optional<MaxRecoveryMismatch>> CheckMaximumExtendedRecovery(
    const SchemaMapping& mapping, const SchemaMapping& reverse,
    const std::vector<Instance>& family, const ChaseOptions& chase_options = {},
    const DisjunctiveChaseOptions& disjunctive_options = {});

/// A violation of one of the three universal-faithfulness conditions
/// (Definition 6.1) at source instance `I`.
struct UniversalFaithfulViolation {
  Instance I;
  int condition = 0;  // 1, 2, or 3
  /// Condition 1: the branch Vl with not(I →_M Vl). Condition 3: the
  /// instance I' with I →_M I' but no branch mapping into it.
  std::optional<Instance> witness;

  std::string ToString() const;
};

/// Checks that M' is universal-faithful for M (Definition 6.1) on each I
/// in `family`, with condition (3)'s quantifier over I' bounded to
/// `family`. Returns the first violation, or nullopt. By Theorem 6.2 this
/// is the procedural counterpart of being a maximum extended recovery.
Result<std::optional<UniversalFaithfulViolation>> CheckUniversalFaithful(
    const SchemaMapping& mapping, const SchemaMapping& reverse,
    const std::vector<Instance>& family, const ChaseOptions& chase_options = {},
    const DisjunctiveChaseOptions& disjunctive_options = {});

}  // namespace rdx

#endif  // RDX_MAPPING_RECOVERY_H_
