#ifndef RDX_MAPPING_REPORT_H_
#define RDX_MAPPING_REPORT_H_

#include <optional>
#include <string>

#include "analysis/analyze.h"
#include "base/status.h"
#include "mapping/information_loss.h"
#include "mapping/inverse_checks.h"
#include "mapping/schema_mapping.h"

namespace rdx {

/// A structured invertibility analysis of a schema mapping over a bounded
/// universe — the paper's decision ladder as a data type:
///   1. homomorphism property (Theorem 3.13) → extended invertibility;
///   2. chase-inverse verification of a candidate reverse (Theorem 3.17);
///   3. loss quantification (Corollary 4.14) and, for full-tgd mappings,
///      maximum-extended-recovery synthesis (Theorem 5.1) with
///      universal-faithfulness verification (Theorem 6.2).
struct InvertibilityReport {
  /// Static analysis of the forward dependencies (rdx::analysis): lint
  /// diagnostics, weak-acyclicity verdict, and chase-size bound. Computed
  /// before any chase runs, so its verdicts hold even when the dynamic
  /// ladder below is cut short by budgets.
  AnalysisReport statics;

  /// Parameters of the universe the analysis ran on.
  std::size_t universe_size = 0;
  std::size_t universe_constants = 0;
  std::size_t universe_nulls = 0;
  std::size_t universe_max_facts = 0;

  /// Extended invertibility verdict (exhaustive up to the universe).
  bool extended_invertible = false;
  std::optional<PairCounterexample> hom_property_counterexample;

  /// Information loss measurement (always computed).
  InformationLossReport loss;

  /// For full-tgd mappings that are not extended invertible: the
  /// synthesized maximum extended recovery and whether it verified as
  /// universal-faithful on the universe.
  std::optional<SchemaMapping> max_extended_recovery;
  std::optional<bool> recovery_universal_faithful;

  /// Human-readable rendering (the format the rdx_cli `analyze` command
  /// and the inverse_analysis example print).
  std::string ToString() const;
};

struct AnalyzeOptions {
  std::size_t universe_constants = 2;
  std::size_t universe_nulls = 1;
  std::size_t universe_max_facts = 1;
  std::size_t max_loss_witnesses = 2;
  ChaseOptions chase_options;
  DisjunctiveChaseOptions disjunctive_options;
};

/// Runs the full analysis ladder on `mapping`. Requires a tgd mapping
/// (Constant atoms allowed, no disjunction/inequality — the analysis
/// chases the forward direction).
Result<InvertibilityReport> AnalyzeMapping(const SchemaMapping& mapping,
                                           const AnalyzeOptions& options = {});

}  // namespace rdx

#endif  // RDX_MAPPING_REPORT_H_
