#ifndef RDX_MAPPING_QUASI_INVERSE_H_
#define RDX_MAPPING_QUASI_INVERSE_H_

#include "base/status.h"
#include "mapping/schema_mapping.h"

namespace rdx {

/// The quasi-inverse algorithm for full tgds (Section 4.2 of [FKPT,
/// Quasi-inverses of schema mappings], invoked by Theorem 5.1): given a
/// mapping M = (S, T, Σ) specified by FULL s-t tgds, produces a reverse
/// mapping M' = (T, S, Σ') specified by disjunctive tgds with inequalities
/// that is a maximum extended recovery of M.
///
/// Construction:
///  1. Normalize Σ to single-head full tgds (split conjunctive heads).
///  2. For each target relation T of arity m occurring in some head and
///     each equality type ε (set partition of the positions 0..m-1):
///       * premise: T(z_{ε(0)}, ..., z_{ε(m-1)}) plus inequalities between
///         the representatives of distinct blocks;
///       * one disjunct per normalized tgd φ(x) → T(t) whose head pattern
///         is compatible with ε (t_i = t_j implies i ~ε j): the body φ with
///         each head variable replaced by its block representative and each
///         remaining body variable replaced by a fresh existential.
///     Types with no compatible tgd are omitted (the chase never produces
///     a fact of that type).
///
/// Fails with FailedPrecondition if the mapping is not a full-tgd mapping,
/// and Unimplemented if a head atom contains a constant term.
Result<SchemaMapping> QuasiInverse(const SchemaMapping& mapping);

}  // namespace rdx

#endif  // RDX_MAPPING_QUASI_INVERSE_H_
