#include "mapping/composition.h"

#include "base/metrics.h"
#include "base/strings.h"
#include "base/trace.h"
#include "core/homomorphism.h"
#include "core/quotient.h"

namespace rdx {

Result<std::vector<Instance>> ReverseRoundTrip(
    const SchemaMapping& mapping, const SchemaMapping& reverse,
    const Instance& I, const ChaseOptions& chase_options,
    const DisjunctiveChaseOptions& disjunctive_options) {
  static obs::Counter& runs = obs::Counter::Get("reverse_exchange.runs");
  static obs::Counter& us = obs::Counter::Get("reverse_exchange.us");
  runs.Increment();
  obs::ScopedTimer timer(&us);
  RDX_ASSIGN_OR_RETURN(Instance forward, ChaseMapping(mapping, I, chase_options));
  Result<std::vector<Instance>> worlds =
      DisjunctiveChaseMapping(reverse, forward, disjunctive_options);
  if (worlds.ok() && obs::TracingEnabled()) {
    obs::EmitTrace(obs::TraceEvent("reverse.done")
                       .Add("source_facts", I.size())
                       .Add("forward_facts", forward.size())
                       .Add("worlds", worlds->size())
                       .Add("us", timer.ElapsedMicros()));
  }
  return worlds;
}

Result<std::vector<Instance>> QuotientClosedReverseBranches(
    const SchemaMapping& mapping, const SchemaMapping& reverse,
    const Instance& I, const ChaseOptions& chase_options,
    const DisjunctiveChaseOptions& disjunctive_options) {
  RDX_ASSIGN_OR_RETURN(Instance forward, ChaseMapping(mapping, I, chase_options));
  RDX_ASSIGN_OR_RETURN(std::vector<Instance> quotients,
                       EnumerateNullQuotients(forward));
  std::vector<Instance> branches;
  for (const Instance& q : quotients) {
    RDX_ASSIGN_OR_RETURN(std::vector<Instance> per_quotient,
                         DisjunctiveChaseMapping(reverse, q,
                                                 disjunctive_options));
    for (Instance& v : per_quotient) {
      bool duplicate = false;
      for (const Instance& earlier : branches) {
        RDX_ASSIGN_OR_RETURN(bool equiv, AreHomEquivalent(earlier, v));
        if (equiv) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) branches.push_back(std::move(v));
    }
  }
  return branches;
}

Result<bool> InExtendedComposition(
    const SchemaMapping& mapping, const SchemaMapping& reverse,
    const Instance& I, const Instance& K, const ChaseOptions& chase_options,
    const DisjunctiveChaseOptions& disjunctive_options) {
  if (!K.ConformsTo(reverse.target())) {
    return Status::InvalidArgument(
        StrCat("composition endpoint does not conform to the reverse "
               "mapping's target schema ",
               reverse.target().ToString()));
  }
  // The plain round trip is complete for builtin-free reverse mappings;
  // inequalities and Constant atoms need the quotient closure (see
  // QuotientClosedReverseBranches).
  const bool needs_quotients =
      reverse.UsesInequalities() || reverse.UsesConstantPredicate();
  std::vector<Instance> branches;
  if (needs_quotients) {
    RDX_ASSIGN_OR_RETURN(
        branches, QuotientClosedReverseBranches(mapping, reverse, I,
                                                chase_options,
                                                disjunctive_options));
  } else {
    RDX_ASSIGN_OR_RETURN(
        branches, ReverseRoundTrip(mapping, reverse, I, chase_options,
                                   disjunctive_options));
  }
  for (const Instance& V : branches) {
    RDX_ASSIGN_OR_RETURN(bool hom, HasHomomorphism(V, K));
    if (hom) return true;
  }
  return false;
}

}  // namespace rdx
