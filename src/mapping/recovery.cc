#include "mapping/recovery.h"

#include "base/strings.h"
#include "core/homomorphism.h"
#include "mapping/extended.h"

namespace rdx {

std::string MaxRecoveryMismatch::ToString() const {
  return StrCat("pair (", i1.ToString(), ", ", i2.ToString(),
                "): in e(M)∘e(M')=", in_composition,
                " but in →M=", in_arrow_m);
}

std::string UniversalFaithfulViolation::ToString() const {
  std::string out = StrCat("I=", I.ToString(), " violates condition (",
                           condition, ")");
  if (witness.has_value()) {
    out += StrCat(" with witness ", witness->ToString());
  }
  return out;
}

Result<std::optional<Instance>> CheckExtendedRecovery(
    const SchemaMapping& mapping, const SchemaMapping& reverse,
    const std::vector<Instance>& family, const ChaseOptions& chase_options,
    const DisjunctiveChaseOptions& disjunctive_options) {
  for (const Instance& I : family) {
    RDX_ASSIGN_OR_RETURN(
        bool in_comp,
        InExtendedComposition(mapping, reverse, I, I, chase_options,
                              disjunctive_options));
    if (!in_comp) return std::optional<Instance>(I);
  }
  return std::optional<Instance>();
}

Result<std::optional<MaxRecoveryMismatch>> CheckMaximumExtendedRecovery(
    const SchemaMapping& mapping, const SchemaMapping& reverse,
    const std::vector<Instance>& family, const ChaseOptions& chase_options,
    const DisjunctiveChaseOptions& disjunctive_options) {
  for (const Instance& I1 : family) {
    for (const Instance& I2 : family) {
      RDX_ASSIGN_OR_RETURN(
          bool in_comp,
          InExtendedComposition(mapping, reverse, I1, I2, chase_options,
                                disjunctive_options));
      RDX_ASSIGN_OR_RETURN(bool in_arrow,
                           ArrowM(mapping, I1, I2, chase_options));
      if (in_comp != in_arrow) {
        return std::optional<MaxRecoveryMismatch>(
            MaxRecoveryMismatch{I1, I2, in_comp, in_arrow});
      }
    }
  }
  return std::optional<MaxRecoveryMismatch>();
}

Result<std::optional<UniversalFaithfulViolation>> CheckUniversalFaithful(
    const SchemaMapping& mapping, const SchemaMapping& reverse,
    const std::vector<Instance>& family, const ChaseOptions& chase_options,
    const DisjunctiveChaseOptions& disjunctive_options) {
  // Definition 6.1 is stated for reverse mappings given by plain
  // disjunctive tgds, where the syntactic round trip is the right branch
  // set. For reverse mappings with inequality/Constant bodies (e.g.
  // quasi-inverse outputs) the library extends the definition with the
  // quotient-closed branch set, which is what e(M') actually denotes there
  // (see QuotientClosedReverseBranches).
  const bool needs_quotients =
      reverse.UsesInequalities() || reverse.UsesConstantPredicate();
  for (const Instance& I : family) {
    std::vector<Instance> branches;
    if (needs_quotients) {
      RDX_ASSIGN_OR_RETURN(
          branches, QuotientClosedReverseBranches(mapping, reverse, I,
                                                  chase_options,
                                                  disjunctive_options));
    } else {
      RDX_ASSIGN_OR_RETURN(
          branches, ReverseRoundTrip(mapping, reverse, I, chase_options,
                                     disjunctive_options));
    }

    // Condition (1): every branch Vl satisfies I →_M Vl.
    for (const Instance& V : branches) {
      RDX_ASSIGN_OR_RETURN(bool arrow, ArrowM(mapping, I, V, chase_options));
      if (!arrow) {
        return std::optional<UniversalFaithfulViolation>(
            UniversalFaithfulViolation{I, 1, V});
      }
    }

    // Condition (2): some branch Vi satisfies Vi →_M I.
    bool some_back = false;
    for (const Instance& V : branches) {
      RDX_ASSIGN_OR_RETURN(bool arrow, ArrowM(mapping, V, I, chase_options));
      if (arrow) {
        some_back = true;
        break;
      }
    }
    if (!some_back) {
      return std::optional<UniversalFaithfulViolation>(
          UniversalFaithfulViolation{I, 2, std::nullopt});
    }

    // Condition (3): for every I' with I →_M I', some branch Vj → I'.
    for (const Instance& Iprime : family) {
      RDX_ASSIGN_OR_RETURN(bool arrow,
                           ArrowM(mapping, I, Iprime, chase_options));
      if (!arrow) continue;
      bool covered = false;
      for (const Instance& V : branches) {
        RDX_ASSIGN_OR_RETURN(bool hom, HasHomomorphism(V, Iprime));
        if (hom) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        return std::optional<UniversalFaithfulViolation>(
            UniversalFaithfulViolation{I, 3, Iprime});
      }
    }
  }
  return std::optional<UniversalFaithfulViolation>();
}

}  // namespace rdx
