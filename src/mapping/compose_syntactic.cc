#include "mapping/compose_syntactic.h"

#include <algorithm>

#include "analysis/lints.h"
#include "base/strings.h"

namespace rdx {
namespace {

// A single-head full tgd of M12, with its variables freshly renamed so
// that repeated resolutions never capture each other's variables.
struct SingleHead {
  std::vector<Atom> body;
  Atom head;
};

// Union-find over variables with optional constant binding per class.
class TermUnifier {
 public:
  // Unifies two terms; returns false on constant clash.
  bool Unify(const Term& a, const Term& b) {
    if (a.IsConstant() && b.IsConstant()) {
      return a.constant() == b.constant();
    }
    if (a.IsConstant()) return BindConstant(b.variable(), a.constant());
    if (b.IsConstant()) return BindConstant(a.variable(), b.constant());
    Variable ra = Find(a.variable());
    Variable rb = Find(b.variable());
    if (ra == rb) return true;
    auto ca = constants_.find(ra);
    auto cb = constants_.find(rb);
    if (ca != constants_.end() && cb != constants_.end() &&
        !(ca->second == cb->second)) {
      return false;
    }
    parent_[ra] = rb;
    if (ca != constants_.end()) {
      constants_[rb] = ca->second;
      constants_.erase(ra);
    }
    return true;
  }

  // The canonical term of `t` under the current unification.
  Term Resolve(const Term& t) {
    if (t.IsConstant()) return t;
    Variable root = Find(t.variable());
    auto it = constants_.find(root);
    if (it != constants_.end()) return Term::Const(it->second);
    return Term::Var(root);
  }

 private:
  Variable Find(Variable v) {
    auto it = parent_.find(v);
    if (it == parent_.end()) return v;
    Variable root = Find(it->second);
    parent_[v] = root;
    return root;
  }

  bool BindConstant(Variable v, Value c) {
    Variable root = Find(v);
    auto it = constants_.find(root);
    if (it != constants_.end()) return it->second == c;
    constants_.emplace(root, c);
    return true;
  }

  std::unordered_map<Variable, Variable, VariableHash> parent_;
  std::unordered_map<Variable, Value, VariableHash> constants_;
};

// Renames all variables of a dependency's body+single head with fresh
// variables.
SingleHead RenameFresh(const std::vector<Atom>& body, const Atom& head) {
  std::unordered_map<Variable, Variable, VariableHash> renaming;
  auto rename_term = [&](const Term& t) -> Term {
    if (t.IsConstant()) return t;
    auto it = renaming.find(t.variable());
    if (it == renaming.end()) {
      it = renaming.emplace(t.variable(), Variable::Fresh()).first;
    }
    return Term::Var(it->second);
  };
  auto rename_atom = [&](const Atom& a) -> Atom {
    std::vector<Term> terms;
    terms.reserve(a.terms().size());
    for (const Term& t : a.terms()) terms.push_back(rename_term(t));
    return Atom::MustRelational(a.relation(), std::move(terms));
  };
  SingleHead out{{}, rename_atom(head)};
  out.body.reserve(body.size());
  for (const Atom& a : body) out.body.push_back(rename_atom(a));
  return out;
}

}  // namespace

Result<SchemaMapping> ComposeFullWithTgds(const SchemaMapping& m12,
                                          const SchemaMapping& m23) {
  if (!m12.IsFullTgdMapping()) {
    return Status::FailedPrecondition(
        StrCat("ComposeFullWithTgds requires M12 to be specified by full "
               "s-t tgds (beyond that, composition needs second-order "
               "tgds); rdx_lint reports the offending dependencies as ",
               LintCodeId(LintCode::kNotFullTgd), "/",
               LintCodeId(LintCode::kNotPlainTgd)));
  }
  if (!m23.IsTgdMapping()) {
    return Status::Unimplemented(
        StrCat("ComposeFullWithTgds requires M23 to be specified by plain "
               "s-t tgds (no disjunction, inequalities, or Constant; lint ",
               LintCodeId(LintCode::kNotPlainTgd), ")"));
  }
  for (Relation r : m23.source().relations()) {
    if (!m12.target().Contains(r)) {
      return Status::InvalidArgument(
          StrCat("middle schemas disagree: relation '", r.name(),
                 "' of M23's source is not in M12's target"));
    }
  }
  if (!m12.source().DisjointFrom(m23.target())) {
    return Status::InvalidArgument(
        "M12's source and M23's target schemas must be disjoint");
  }

  // Normalize M12 to single-head tgds grouped by head relation.
  std::unordered_map<Relation, std::vector<const Dependency*>> by_relation;
  std::unordered_map<Relation, std::vector<std::size_t>> head_index;
  struct Producer {
    const Dependency* dep;
    std::size_t head_atom;
  };
  std::unordered_map<Relation, std::vector<Producer>> producers;
  for (const Dependency& dep : m12.dependencies()) {
    for (std::size_t h = 0; h < dep.disjuncts()[0].size(); ++h) {
      producers[dep.disjuncts()[0][h].relation()].push_back(
          Producer{&dep, h});
    }
  }

  std::vector<Dependency> composed;
  for (const Dependency& chi : m23.dependencies()) {
    const std::vector<Atom> body = chi.RelationalBody();
    // Candidate producers per body atom; a body atom with none kills the
    // tgd (its body can never be realized by M12's chase).
    std::vector<const std::vector<Producer>*> candidates;
    bool dead = false;
    for (const Atom& a : body) {
      auto it = producers.find(a.relation());
      if (it == producers.end()) {
        dead = true;
        break;
      }
      candidates.push_back(&it->second);
    }
    if (dead) continue;

    // Cartesian product over producer choices.
    std::vector<std::size_t> choice(body.size(), 0);
    while (true) {
      // Instantiate fresh copies and unify.
      TermUnifier unifier;
      std::vector<Atom> new_body;
      bool consistent = true;
      for (std::size_t i = 0; i < body.size() && consistent; ++i) {
        const Producer& p = (*candidates[i])[choice[i]];
        SingleHead fresh =
            RenameFresh(p.dep->body(), p.dep->disjuncts()[0][p.head_atom]);
        const std::vector<Term>& pattern = body[i].terms();
        const std::vector<Term>& produced = fresh.head.terms();
        for (std::size_t k = 0; k < pattern.size(); ++k) {
          if (!unifier.Unify(pattern[k], produced[k])) {
            consistent = false;
            break;
          }
        }
        if (consistent) {
          for (const Atom& a : fresh.body) new_body.push_back(a);
        }
      }
      if (consistent) {
        // Apply the unifier to body and head.
        auto resolve_atom = [&](const Atom& a) -> Atom {
          std::vector<Term> terms;
          terms.reserve(a.terms().size());
          for (const Term& t : a.terms()) terms.push_back(unifier.Resolve(t));
          return Atom::MustRelational(a.relation(), std::move(terms));
        };
        std::vector<Atom> resolved_body;
        for (const Atom& a : new_body) {
          Atom r = resolve_atom(a);
          if (std::find(resolved_body.begin(), resolved_body.end(), r) ==
              resolved_body.end()) {
            resolved_body.push_back(std::move(r));
          }
        }
        std::vector<Atom> resolved_head;
        for (const Atom& a : chi.disjuncts()[0]) {
          resolved_head.push_back(resolve_atom(a));
        }
        RDX_ASSIGN_OR_RETURN(
            Dependency dep,
            Dependency::MakeTgd(std::move(resolved_body),
                                std::move(resolved_head)));
        if (std::find(composed.begin(), composed.end(), dep) ==
            composed.end()) {
          composed.push_back(std::move(dep));
        }
      }
      // Odometer.
      std::size_t pos = 0;
      while (pos < choice.size()) {
        if (++choice[pos] < candidates[pos]->size()) break;
        choice[pos] = 0;
        ++pos;
      }
      if (pos == choice.size()) break;
    }
  }

  if (composed.empty()) {
    // A mapping with no dependencies is the "everything goes" mapping;
    // build it explicitly (SchemaMapping allows empty Σ).
    return SchemaMapping::Make(m12.source(), m23.target(), {});
  }
  return SchemaMapping::Make(m12.source(), m23.target(),
                             std::move(composed));
}

}  // namespace rdx
