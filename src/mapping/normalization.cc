#include "mapping/normalization.h"

#include <algorithm>
#include <functional>
#include <map>

#include "base/strings.h"
#include "core/match.h"

namespace rdx {
namespace {

Status RequirePlainTgd(const Dependency& d, const char* who) {
  if (!d.IsPlainTgd()) {
    return Status::Unimplemented(
        StrCat(who, " supports plain tgds only, got: ", d.ToString()));
  }
  return Status::OK();
}

}  // namespace

Result<bool> Implies(const std::vector<Dependency>& sigma,
                     const Dependency& d, const ChaseOptions& options) {
  RDX_RETURN_IF_ERROR(RequirePlainTgd(d, "Implies"));
  for (const Dependency& s : sigma) {
    RDX_RETURN_IF_ERROR(RequirePlainTgd(s, "Implies"));
  }

  // Freeze: universal variables become fresh constants.
  Assignment frozen;
  for (Variable v : d.UniversalVars()) {
    frozen.emplace(v, Value::MakeConstant(StrCat("frz_", v.id(), "_",
                                                 Value::FreshNull().id())));
  }
  Instance canonical;
  for (const Atom& a : d.RelationalBody()) {
    RDX_ASSIGN_OR_RETURN(Fact f, a.Ground(frozen));
    canonical.AddFact(f);
  }

  RDX_ASSIGN_OR_RETURN(ChaseResult chased, Chase(canonical, sigma, options));

  // d's head must be satisfiable in the chase result under the frozen
  // assignment (existential variables free).
  bool satisfied = false;
  Status status = EnumerateMatches(
      d.disjuncts()[0], chased.combined,
      [&](const Assignment&) {
        satisfied = true;
        return false;
      },
      options.match_options, frozen);
  RDX_RETURN_IF_ERROR(status);
  return satisfied;
}

Result<std::vector<Dependency>> MinimizeDependencies(
    const std::vector<Dependency>& dependencies, const ChaseOptions& options) {
  std::vector<Dependency> kept = dependencies;
  // Greedily try to drop each dependency (first to last); a dependency is
  // dropped if the others imply it.
  std::size_t i = 0;
  while (i < kept.size()) {
    std::vector<Dependency> others;
    others.reserve(kept.size() - 1);
    for (std::size_t j = 0; j < kept.size(); ++j) {
      if (j != i) others.push_back(kept[j]);
    }
    RDX_ASSIGN_OR_RETURN(bool implied, Implies(others, kept[i], options));
    if (implied) {
      kept.erase(kept.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  return kept;
}

Result<std::vector<Dependency>> SplitHead(const Dependency& dependency) {
  RDX_RETURN_IF_ERROR(RequirePlainTgd(dependency, "SplitHead"));
  const std::vector<Atom>& head = dependency.disjuncts()[0];
  std::vector<Variable> existentials = dependency.ExistentialVars(0);
  auto is_existential = [&](Variable v) {
    return std::find(existentials.begin(), existentials.end(), v) !=
           existentials.end();
  };

  // Union-find over head atoms: atoms sharing an existential variable
  // must remain in one component.
  std::vector<std::size_t> parent(head.size());
  for (std::size_t i = 0; i < head.size(); ++i) parent[i] = i;
  std::function<std::size_t(std::size_t)> find =
      [&](std::size_t x) -> std::size_t {
    return parent[x] == x ? x : (parent[x] = find(parent[x]));
  };
  std::map<uint32_t, std::size_t> first_seen;  // existential var -> atom
  for (std::size_t i = 0; i < head.size(); ++i) {
    for (Variable v : head[i].Vars()) {
      if (!is_existential(v)) continue;
      auto it = first_seen.find(v.id());
      if (it == first_seen.end()) {
        first_seen.emplace(v.id(), i);
      } else {
        parent[find(i)] = find(it->second);
      }
    }
  }

  std::map<std::size_t, std::vector<Atom>> components;
  for (std::size_t i = 0; i < head.size(); ++i) {
    components[find(i)].push_back(head[i]);
  }
  std::vector<Dependency> out;
  for (auto& [root, atoms] : components) {
    RDX_ASSIGN_OR_RETURN(Dependency dep,
                         Dependency::MakeTgd(dependency.body(), atoms));
    out.push_back(std::move(dep));
  }
  return out;
}

Result<SchemaMapping> MinimizeMapping(const SchemaMapping& mapping,
                                      const ChaseOptions& options) {
  RDX_ASSIGN_OR_RETURN(std::vector<Dependency> minimized,
                       MinimizeDependencies(mapping.dependencies(), options));
  return SchemaMapping::Make(mapping.source(), mapping.target(),
                             std::move(minimized));
}

}  // namespace rdx
