#include "mapping/reverse_query.h"

#include "mapping/extended.h"

namespace rdx {
namespace {

Result<TupleSet> CertainOverBranches(const std::vector<Instance>& branches,
                                     const ConjunctiveQuery& query) {
  // An empty branch set means the disjunctive chase failed everywhere; no
  // possible world, so (vacuously) every tuple is certain — but that
  // cannot arise for tgd-style dependencies, whose chase always completes.
  // Treat it as "no answers" defensively.
  if (branches.empty()) return TupleSet{};
  std::vector<TupleSet> per_branch;
  per_branch.reserve(branches.size());
  for (const Instance& K : branches) {
    RDX_ASSIGN_OR_RETURN(TupleSet answers, query.Eval(K));
    per_branch.push_back(std::move(answers));
  }
  return DiscardTuplesWithNulls(IntersectAll(per_branch));
}

}  // namespace

Result<TupleSet> ReverseCertainAnswers(
    const SchemaMapping& mapping, const SchemaMapping& recovery,
    const ConjunctiveQuery& query, const Instance& I,
    const ChaseOptions& chase_options,
    const DisjunctiveChaseOptions& disjunctive_options) {
  RDX_ASSIGN_OR_RETURN(
      std::vector<Instance> branches,
      ReverseRoundTrip(mapping, recovery, I, chase_options,
                       disjunctive_options));
  return CertainOverBranches(branches, query);
}

Result<TupleSet> ReverseCertainAnswersFromTarget(
    const SchemaMapping& recovery, const ConjunctiveQuery& query,
    const Instance& J, const DisjunctiveChaseOptions& disjunctive_options) {
  RDX_ASSIGN_OR_RETURN(
      std::vector<Instance> branches,
      DisjunctiveChaseMapping(recovery, J, disjunctive_options));
  return CertainOverBranches(branches, query);
}

Result<TupleSet> ForwardCertainAnswers(const SchemaMapping& mapping,
                                       const ConjunctiveQuery& query,
                                       const Instance& I,
                                       const ChaseOptions& options) {
  RDX_ASSIGN_OR_RETURN(Instance chased, ChaseMapping(mapping, I, options));
  RDX_ASSIGN_OR_RETURN(TupleSet answers, query.Eval(chased));
  return DiscardTuplesWithNulls(answers);
}

Result<TupleSet> NullFreeAnswers(const ConjunctiveQuery& query,
                                 const Instance& I,
                                 const MatchOptions& options) {
  RDX_ASSIGN_OR_RETURN(TupleSet answers, query.Eval(I, options));
  return DiscardTuplesWithNulls(answers);
}

}  // namespace rdx
