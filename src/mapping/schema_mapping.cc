#include "mapping/schema_mapping.h"

#include <cstdio>
#include <cstdlib>

#include "base/strings.h"
#include "chase/chase.h"
#include "core/dependency_parser.h"

namespace rdx {

Result<SchemaMapping> SchemaMapping::Make(
    Schema source, Schema target, std::vector<Dependency> dependencies) {
  if (!source.DisjointFrom(target)) {
    return Status::InvalidArgument(
        StrCat("source and target schemas must be disjoint: ",
               source.ToString(), " vs ", target.ToString()));
  }
  for (const Dependency& dep : dependencies) {
    for (Relation r : dep.BodyRelations()) {
      if (!source.Contains(r)) {
        return Status::InvalidArgument(
            StrCat("body relation '", r.name(), "' of dependency '",
                   dep.ToString(), "' is not in the source schema ",
                   source.ToString()));
      }
    }
    for (Relation r : dep.HeadRelations()) {
      if (!target.Contains(r)) {
        return Status::InvalidArgument(
            StrCat("head relation '", r.name(), "' of dependency '",
                   dep.ToString(), "' is not in the target schema ",
                   target.ToString()));
      }
    }
  }
  return SchemaMapping(std::move(source), std::move(target),
                       std::move(dependencies));
}

Result<SchemaMapping> SchemaMapping::Parse(Schema source, Schema target,
                                           std::string_view text) {
  RDX_ASSIGN_OR_RETURN(std::vector<Dependency> deps, ParseDependencies(text));
  return Make(std::move(source), std::move(target), std::move(deps));
}

SchemaMapping SchemaMapping::MustParse(Schema source, Schema target,
                                       std::string_view text) {
  Result<SchemaMapping> m = Parse(std::move(source), std::move(target), text);
  if (!m.ok()) {
    std::fprintf(stderr, "SchemaMapping::MustParse(\"%.*s\"): %s\n",
                 static_cast<int>(text.size()), text.data(),
                 m.status().ToString().c_str());
    std::abort();
  }
  return *std::move(m);
}

bool SchemaMapping::IsTgdMapping() const {
  for (const Dependency& dep : dependencies_) {
    if (!dep.IsPlainTgd()) return false;
  }
  return true;
}

bool SchemaMapping::IsFullTgdMapping() const {
  if (!IsTgdMapping()) return false;
  for (const Dependency& dep : dependencies_) {
    if (!dep.IsFull()) return false;
  }
  return true;
}

bool SchemaMapping::UsesDisjunction() const {
  for (const Dependency& dep : dependencies_) {
    if (dep.HasDisjunction()) return true;
  }
  return false;
}

bool SchemaMapping::UsesInequalities() const {
  for (const Dependency& dep : dependencies_) {
    if (dep.UsesInequalities()) return true;
  }
  return false;
}

bool SchemaMapping::UsesConstantPredicate() const {
  for (const Dependency& dep : dependencies_) {
    if (dep.UsesConstantPredicate()) return true;
  }
  return false;
}

Result<bool> SchemaMapping::Satisfied(const Instance& source_instance,
                                      const Instance& target_instance,
                                      const MatchOptions& options) const {
  if (!source_instance.ConformsTo(source_)) {
    return Status::InvalidArgument(
        "source instance does not conform to the source schema");
  }
  if (!target_instance.ConformsTo(target_)) {
    return Status::InvalidArgument(
        "target instance does not conform to the target schema");
  }
  Instance combined = Instance::Union(source_instance, target_instance);
  return SatisfiesAll(combined, dependencies_, options);
}

std::string SchemaMapping::ToString() const {
  return StrCat("M = (", source_.ToString(), ", ", target_.ToString(),
                ")\n", DependenciesToString(dependencies_));
}

}  // namespace rdx
