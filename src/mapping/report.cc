#include "mapping/report.h"

#include <cstdio>

#include "base/strings.h"
#include "generator/enumerator.h"
#include "mapping/quasi_inverse.h"
#include "mapping/recovery.h"

namespace rdx {

std::string InvertibilityReport::ToString() const {
  std::string out = statics.ToString();
  out += StrCat("universe: ", universe_size, " instances (",
                universe_constants, " constants, ", universe_nulls,
                " nulls, <=", universe_max_facts, " facts)\n");
  if (extended_invertible) {
    out += "extended invertible on this universe (Theorem 3.13)\n";
  } else {
    out += StrCat(
        "NOT extended invertible (Theorem 3.13); witness:\n  I1 = ",
        hom_property_counterexample->i1.ToString(),
        "\n  I2 = ", hom_property_counterexample->i2.ToString(), "\n");
  }
  out += StrCat("information loss: ", loss.loss_pairs, " / ",
                loss.total_pairs, " pairs (density ");
  char density[32];
  std::snprintf(density, sizeof(density), "%.4f", loss.LossDensity());
  out += density;
  out += ")\n";
  for (const PairCounterexample& w : loss.witnesses) {
    out += StrCat("  lost pair: ", w.i1.ToString(), "  ~_M  ",
                  w.i2.ToString(), "\n");
  }
  if (max_extended_recovery.has_value()) {
    out += StrCat("maximum extended recovery (Theorem 5.1):\n",
                  DependenciesToString(max_extended_recovery->dependencies()),
                  "\n");
    if (recovery_universal_faithful.has_value()) {
      out += StrCat("universal-faithful on the universe (Theorem 6.2): ",
                    *recovery_universal_faithful ? "yes" : "NO", "\n");
    }
  }
  return out;
}

Result<InvertibilityReport> AnalyzeMapping(const SchemaMapping& mapping,
                                           const AnalyzeOptions& options) {
  if (!mapping.IsTgdMapping() && !mapping.UsesConstantPredicate()) {
    return Status::FailedPrecondition(
        StrCat("AnalyzeMapping requires a (possibly Constant-guarded) tgd "
               "mapping (lint ",
               LintCodeId(LintCode::kNotPlainTgd), ")"));
  }
  if (mapping.UsesDisjunction() || mapping.UsesInequalities()) {
    return Status::FailedPrecondition(
        StrCat("AnalyzeMapping requires a forward mapping without "
               "disjunction or inequalities (lint ",
               LintCodeId(LintCode::kNotPlainTgd), ")"));
  }

  InvertibilityReport report;
  AnalysisInput static_input;
  static_input.dependencies = mapping.dependencies();
  static_input.source = mapping.source();
  static_input.target = mapping.target();
  RDX_ASSIGN_OR_RETURN(report.statics, AnalyzeDependencies(static_input));
  report.universe_constants = options.universe_constants;
  report.universe_nulls = options.universe_nulls;
  report.universe_max_facts = options.universe_max_facts;

  EnumerationUniverse universe;
  universe.schema = mapping.source();
  universe.domain =
      StandardDomain(options.universe_constants, options.universe_nulls);
  universe.max_facts = options.universe_max_facts;
  RDX_ASSIGN_OR_RETURN(std::vector<Instance> family,
                       EnumerateInstances(universe));
  report.universe_size = family.size();

  RDX_ASSIGN_OR_RETURN(
      report.hom_property_counterexample,
      CheckHomomorphismProperty(mapping, family, options.chase_options));
  report.extended_invertible = !report.hom_property_counterexample.has_value();

  RDX_ASSIGN_OR_RETURN(
      report.loss,
      MeasureInformationLoss(mapping, family, options.max_loss_witnesses,
                             options.chase_options));

  if (!report.extended_invertible && mapping.IsFullTgdMapping()) {
    RDX_ASSIGN_OR_RETURN(SchemaMapping recovery, QuasiInverse(mapping));
    RDX_ASSIGN_OR_RETURN(
        std::optional<UniversalFaithfulViolation> violation,
        CheckUniversalFaithful(mapping, recovery, family,
                               options.chase_options,
                               options.disjunctive_options));
    report.recovery_universal_faithful = !violation.has_value();
    report.max_extended_recovery = std::move(recovery);
  }
  return report;
}

}  // namespace rdx
