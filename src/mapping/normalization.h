#ifndef RDX_MAPPING_NORMALIZATION_H_
#define RDX_MAPPING_NORMALIZATION_H_

#include <vector>

#include "base/status.h"
#include "chase/chase.h"
#include "mapping/schema_mapping.h"

namespace rdx {

/// Logical implication Σ ⊨ d for plain tgds, decided by the classical
/// chase test: freeze d's universal variables to fresh constants, chase
/// the frozen body with Σ, and check whether d's head is satisfied under
/// the frozen assignment. Sound and complete for plain (existential) tgds
/// with terminating chase; rejects dependencies with builtins or
/// disjunction (Unimplemented).
Result<bool> Implies(const std::vector<Dependency>& sigma,
                     const Dependency& d, const ChaseOptions& options = {});

/// Removes dependencies implied by the remaining ones (greedy, in order;
/// the result is a minimal subset equivalent to the input, though not
/// necessarily the unique minimum). Plain tgds only.
Result<std::vector<Dependency>> MinimizeDependencies(
    const std::vector<Dependency>& dependencies,
    const ChaseOptions& options = {});

/// Normalizes a tgd's head: splits a conjunctive head into one tgd per
/// connected component of head atoms linked by shared EXISTENTIAL
/// variables (atoms sharing an existential must stay together; the rest
/// may split). Logically equivalent to the input. Plain tgds only.
Result<std::vector<Dependency>> SplitHead(const Dependency& dependency);

/// MinimizeDependencies applied to a mapping (same schemas).
Result<SchemaMapping> MinimizeMapping(const SchemaMapping& mapping,
                                      const ChaseOptions& options = {});

}  // namespace rdx

#endif  // RDX_MAPPING_NORMALIZATION_H_
