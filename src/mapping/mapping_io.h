#ifndef RDX_MAPPING_MAPPING_IO_H_
#define RDX_MAPPING_MAPPING_IO_H_

#include <string_view>

#include "base/status.h"
#include "mapping/schema_mapping.h"

namespace rdx {

/// Parses a schema mapping from its textual file format:
///
///   # decomposition mapping (comments start with '#')
///   source: Emp/3
///   target: WorksIn/2, Manages/2
///   Emp(n, d, g) -> WorksIn(n, d) & Manages(d, g);
///   Emp(n, d, g) -> WorksIn(n, d)
///
/// `source:` and `target:` lines declare the schemas as comma-separated
/// Name/arity pairs (each must appear exactly once, before any
/// dependency); all remaining non-comment text is a ';'-separated
/// dependency list (see dependency_parser.h for the dependency syntax).
Result<SchemaMapping> ParseMappingText(std::string_view text);

/// Reads and parses a mapping file from disk.
Result<SchemaMapping> LoadMappingFile(const std::string& path);

/// Renders a mapping in the file format accepted by ParseMappingText.
std::string MappingToText(const SchemaMapping& mapping);

/// Reads and parses an instance file (see instance_parser.h syntax;
/// '#' comments allowed).
Result<Instance> LoadInstanceFile(const std::string& path);

/// Parses a bare ';'-separated dependency-set file ('#' comments
/// allowed; no schema declarations) — the .rdxd format consumed by
/// `rdx_lint --deps` and served by rdx_serve as a chase-only plan
/// (docs/serving.md). Unlike a mapping file, the set may be same-schema
/// and so can land anywhere in the termination hierarchy.
Result<std::vector<Dependency>> ParseDependencySetText(std::string_view text);
Result<std::vector<Dependency>> LoadDependencySetFile(const std::string& path);

}  // namespace rdx

#endif  // RDX_MAPPING_MAPPING_IO_H_
