#ifndef RDX_MAPPING_COMPOSE_SYNTACTIC_H_
#define RDX_MAPPING_COMPOSE_SYNTACTIC_H_

#include "base/status.h"
#include "mapping/schema_mapping.h"

namespace rdx {

/// Syntactic composition M12 ∘ M23 (Section 1: composition and inverse are
/// the two fundamental operators; together they enable schema-evolution
/// analysis).
///
/// Implements the classical unfolding construction for the case where M12
/// is specified by FULL s-t tgds and M23 by arbitrary s-t tgds [Fagin,
/// Kolaitis, Popa, Tan, "Composing Schema Mappings", TODS 2005]: because
/// M12 is full, chase_M12(I) contains exactly the heads of triggered
/// tgds, so every S2-atom in a M23 body can be resolved against the heads
/// of M12's (single-head-normalized) tgds. For each M23 tgd and each
/// choice of resolving tgds, the unified conjunction of M12 bodies implies
/// the M23 head — a tgd from S1 to S3. The result specifies exactly
/// M12 ∘ M23; beyond full M12 the composition is not first-order in
/// general (second-order tgds are required), and this function returns
/// FailedPrecondition.
///
/// Choices whose unification is inconsistent (two distinct constants
/// forced equal) are skipped. M23 tgds whose bodies use inequalities or
/// Constant are rejected (Unimplemented): unfolding is not sound for them
/// (a builtin over an S2 value may differ between the chase witness and
/// other solutions).
Result<SchemaMapping> ComposeFullWithTgds(const SchemaMapping& m12,
                                          const SchemaMapping& m23);

}  // namespace rdx

#endif  // RDX_MAPPING_COMPOSE_SYNTACTIC_H_
