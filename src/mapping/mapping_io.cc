#include "mapping/mapping_io.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "base/strings.h"
#include "core/dependency_parser.h"
#include "core/instance_parser.h"

namespace rdx {
namespace {

std::string StripComments(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  bool in_comment = false;
  for (char c : text) {
    if (c == '#') in_comment = true;
    if (c == '\n') in_comment = false;
    if (!in_comment) out.push_back(c);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

// Parses "Name/arity, Name/arity" into a schema.
Result<Schema> ParseSchemaLine(std::string_view line) {
  Schema schema;
  std::size_t start = 0;
  while (start <= line.size()) {
    std::size_t comma = line.find(',', start);
    std::string_view item =
        Trim(line.substr(start, comma == std::string_view::npos
                                    ? std::string_view::npos
                                    : comma - start));
    if (!item.empty()) {
      std::size_t slash = item.find('/');
      if (slash == std::string_view::npos) {
        return Status::InvalidArgument(
            StrCat("schema item '", item, "' must be Name/arity"));
      }
      std::string_view name = Trim(item.substr(0, slash));
      std::string_view arity_text = Trim(item.substr(slash + 1));
      uint32_t arity = 0;
      for (char c : arity_text) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          return Status::InvalidArgument(
              StrCat("bad arity '", arity_text, "' in schema item '", item,
                     "'"));
        }
        arity = arity * 10 + static_cast<uint32_t>(c - '0');
      }
      RDX_ASSIGN_OR_RETURN(Relation rel, Relation::Intern(name, arity));
      RDX_RETURN_IF_ERROR(schema.AddRelation(rel));
    }
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  if (schema.size() == 0) {
    return Status::InvalidArgument("schema declaration is empty");
  }
  return schema;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrCat("cannot open '", path, "'"));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

Result<SchemaMapping> ParseMappingText(std::string_view raw_text) {
  std::string text = StripComments(raw_text);
  std::optional<Schema> source;
  std::optional<Schema> target;
  std::string dependency_text;

  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    std::string_view line(text.data() + pos,
                          (eol == std::string::npos ? text.size() : eol) -
                              pos);
    std::string_view trimmed = Trim(line);
    if (trimmed.rfind("source:", 0) == 0) {
      if (source.has_value()) {
        return Status::InvalidArgument("duplicate 'source:' declaration");
      }
      RDX_ASSIGN_OR_RETURN(Schema s, ParseSchemaLine(trimmed.substr(7)));
      source = std::move(s);
    } else if (trimmed.rfind("target:", 0) == 0) {
      if (target.has_value()) {
        return Status::InvalidArgument("duplicate 'target:' declaration");
      }
      RDX_ASSIGN_OR_RETURN(Schema s, ParseSchemaLine(trimmed.substr(7)));
      target = std::move(s);
    } else {
      // Keep the raw line (schema lines become blank ones) so dependency
      // source locations match the original text, line for line.
      dependency_text.append(line);
    }
    dependency_text.push_back('\n');
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }

  if (!source.has_value() || !target.has_value()) {
    return Status::InvalidArgument(
        "mapping text must declare 'source:' and 'target:' schemas");
  }
  if (Trim(dependency_text).empty()) {
    return SchemaMapping::Make(*std::move(source), *std::move(target), {});
  }
  // Tolerate trailing ';'s. Only the tail is trimmed — leading blank
  // lines stay so parsed source locations remain accurate.
  std::string_view deps = dependency_text;
  auto rtrim = [&deps] {
    while (!deps.empty() &&
           std::isspace(static_cast<unsigned char>(deps.back()))) {
      deps.remove_suffix(1);
    }
  };
  rtrim();
  while (!deps.empty() && deps.back() == ';') {
    deps.remove_suffix(1);
    rtrim();
  }
  return SchemaMapping::Parse(*std::move(source), *std::move(target), deps);
}

Result<SchemaMapping> LoadMappingFile(const std::string& path) {
  RDX_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return ParseMappingText(text);
}

std::string MappingToText(const SchemaMapping& mapping) {
  auto schema_line = [](const Schema& schema) {
    return JoinMapped(schema.relations(), ", ", [](Relation r) {
      return StrCat(r.name(), "/", r.arity());
    });
  };
  return StrCat("source: ", schema_line(mapping.source()), "\n",
                "target: ", schema_line(mapping.target()), "\n",
                JoinMapped(mapping.dependencies(), ";\n",
                           [](const Dependency& d) { return d.ToString(); }),
                "\n");
}

Result<Instance> LoadInstanceFile(const std::string& path) {
  RDX_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return ParseInstance(StripComments(text));
}

Result<std::vector<Dependency>> ParseDependencySetText(std::string_view text) {
  return ParseDependencies(StripComments(text));
}

Result<std::vector<Dependency>> LoadDependencySetFile(
    const std::string& path) {
  RDX_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return ParseDependencySetText(text);
}

}  // namespace rdx
