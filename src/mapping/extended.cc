#include "mapping/extended.h"

#include "base/strings.h"
#include "core/core_computation.h"

namespace rdx {
namespace {

Status CheckChaseable(const SchemaMapping& mapping, bool allow_inequalities) {
  if (mapping.UsesDisjunction()) {
    return Status::FailedPrecondition(
        "operation requires a non-disjunctive mapping");
  }
  if (!allow_inequalities && mapping.UsesInequalities()) {
    return Status::FailedPrecondition(
        "the chase criterion for extended solutions is not valid for "
        "mappings with inequalities");
  }
  return Status::OK();
}

Status CheckSourceInstance(const SchemaMapping& mapping, const Instance& I) {
  if (!I.ConformsTo(mapping.source())) {
    return Status::InvalidArgument(
        StrCat("instance does not conform to the mapping's source schema ",
               mapping.source().ToString()));
  }
  return Status::OK();
}

}  // namespace

Result<Instance> ChaseMapping(const SchemaMapping& mapping, const Instance& I,
                              const ChaseOptions& options) {
  RDX_ASSIGN_OR_RETURN(ChaseResult result,
                       ChaseMappingWithStats(mapping, I, options));
  return result.added;
}

Result<ChaseResult> ChaseMappingWithStats(const SchemaMapping& mapping,
                                          const Instance& I,
                                          const ChaseOptions& options) {
  RDX_RETURN_IF_ERROR(CheckChaseable(mapping, /*allow_inequalities=*/true));
  RDX_RETURN_IF_ERROR(CheckSourceInstance(mapping, I));
  return Chase(I, mapping.dependencies(), options);
}

Result<Instance> CoreChaseMapping(const SchemaMapping& mapping,
                                  const Instance& I,
                                  const ChaseOptions& options) {
  RDX_ASSIGN_OR_RETURN(Instance chased, ChaseMapping(mapping, I, options));
  return ComputeCore(chased);
}

Result<std::vector<Instance>> DisjunctiveChaseMapping(
    const SchemaMapping& mapping, const Instance& I,
    const DisjunctiveChaseOptions& options) {
  RDX_RETURN_IF_ERROR(CheckSourceInstance(mapping, I));
  RDX_ASSIGN_OR_RETURN(DisjunctiveChaseResult result,
                       DisjunctiveChase(I, mapping.dependencies(), options));
  return result.added;
}

Result<bool> IsSolution(const SchemaMapping& mapping, const Instance& I,
                        const Instance& J, const MatchOptions& options) {
  return mapping.Satisfied(I, J, options);
}

Result<bool> IsExtendedSolution(const SchemaMapping& mapping,
                                const Instance& I, const Instance& J,
                                const ChaseOptions& options) {
  RDX_RETURN_IF_ERROR(CheckChaseable(mapping, /*allow_inequalities=*/false));
  if (!J.ConformsTo(mapping.target())) {
    return Status::InvalidArgument(
        "candidate solution does not conform to the target schema");
  }
  RDX_ASSIGN_OR_RETURN(Instance chased, ChaseMapping(mapping, I, options));
  return HasHomomorphism(chased, J);
}

Result<bool> IsExtendedUniversalSolution(const SchemaMapping& mapping,
                                         const Instance& I, const Instance& J,
                                         const ChaseOptions& options) {
  RDX_RETURN_IF_ERROR(CheckChaseable(mapping, /*allow_inequalities=*/false));
  if (!J.ConformsTo(mapping.target())) {
    return Status::InvalidArgument(
        "candidate solution does not conform to the target schema");
  }
  RDX_ASSIGN_OR_RETURN(Instance chased, ChaseMapping(mapping, I, options));
  return AreHomEquivalent(chased, J);
}

Result<bool> ArrowM(const SchemaMapping& mapping, const Instance& I1,
                    const Instance& I2, const ChaseOptions& options) {
  RDX_RETURN_IF_ERROR(CheckChaseable(mapping, /*allow_inequalities=*/false));
  RDX_ASSIGN_OR_RETURN(Instance c1, ChaseMapping(mapping, I1, options));
  RDX_ASSIGN_OR_RETURN(Instance c2, ChaseMapping(mapping, I2, options));
  return HasHomomorphism(c1, c2);
}

Result<bool> ArrowMGround(const SchemaMapping& mapping, const Instance& I1,
                          const Instance& I2, const ChaseOptions& options) {
  if (!I1.IsGround() || !I2.IsGround()) {
    return Status::InvalidArgument(
        "ArrowMGround requires ground instances (Definition 4.18)");
  }
  return ArrowM(mapping, I1, I2, options);
}

}  // namespace rdx
