#include "chase/disjunctive_chase.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_set>

#include "base/attribution.h"
#include "base/metrics.h"
#include "base/parallel_for.h"
#include "base/spans.h"
#include "base/strings.h"
#include "base/trace.h"
#include "core/fact_index.h"
#include "core/homomorphism.h"

namespace rdx {
namespace {

struct UnsatisfiedTrigger {
  const Dependency* dep;
  Assignment match;
};

// Scans one dependency for a body match with no satisfiable head disjunct,
// leaving it in *found (first in enumeration order). `cancelled`, when
// set, is polled between body matches so a losing racer can stop early.
Status ScanDependency(const Instance& instance, const FactIndex& index,
                      const Dependency& dep, const MatchOptions& options,
                      std::optional<UnsatisfiedTrigger>* found,
                      const std::function<bool()>& cancelled) {
  Status inner_error = Status::OK();
  Status status = EnumerateMatches(
      dep.body(), instance, index,
      [&](const Assignment& match) {
        if (cancelled && cancelled()) return false;
        // Check whether some disjunct is satisfiable under `match`.
        for (const auto& disjunct : dep.disjuncts()) {
          bool satisfied = false;
          Status s = EnumerateMatches(
              disjunct, instance, index,
              [&](const Assignment&) {
                satisfied = true;
                return false;
              },
              options, match);
          if (!s.ok()) {
            inner_error = s;
            return false;
          }
          if (satisfied) return true;  // this match is fine; keep going
        }
        *found = UnsatisfiedTrigger{&dep, match};
        return false;  // stop at the first violation
      },
      options);
  RDX_RETURN_IF_ERROR(status);
  RDX_RETURN_IF_ERROR(inner_error);
  return Status::OK();
}

// Adds a racer-local MatchStats into the caller's accumulator (the
// accumulator pointer is not thread-safe; losing racers' speculative work
// is discarded so the accumulated totals match the sequential scan).
void MergeMatchStats(const MatchStats& run, MatchStats* accumulator) {
  if (accumulator == nullptr) return;
  accumulator->enumerations += run.enumerations;
  accumulator->steps += run.steps;
  accumulator->candidates += run.candidates;
  accumulator->matches += run.matches;
}

// Finds the first body match of some dependency with no satisfiable head
// disjunct, or nullopt if `instance` satisfies all dependencies.
//
// With num_threads > 1 the per-dependency scans race on the pool; the
// winner is the lowest dependency index that finds a violation, which is
// exactly the trigger the sequential scan returns. Higher-index racers
// are speculative: they stop once a lower index wins, and their stats are
// dropped from the accumulator (the process-wide match.* counters do see
// the speculative work).
Result<std::optional<UnsatisfiedTrigger>> FindUnsatisfiedTrigger(
    const Instance& instance, const std::vector<Dependency>& dependencies,
    const MatchOptions& options, uint64_t num_threads) {
  FactIndex index(instance);
  if (num_threads <= 1 || dependencies.size() <= 1) {
    for (const Dependency& dep : dependencies) {
      std::optional<UnsatisfiedTrigger> found;
      RDX_RETURN_IF_ERROR(ScanDependency(instance, index, dep, options,
                                         &found, nullptr));
      if (found.has_value()) return found;
    }
    return std::optional<UnsatisfiedTrigger>();
  }

  struct DepScan {
    std::optional<UnsatisfiedTrigger> found;
    MatchStats run;
    Status status = Status::OK();
  };
  std::vector<DepScan> scans(dependencies.size());
  std::atomic<std::size_t> winner{dependencies.size()};
  par::ParallelFor(num_threads, dependencies.size(), [&](std::size_t d) {
    if (winner.load(std::memory_order_relaxed) < d) return;
    DepScan& scan = scans[d];
    MatchOptions task_options = options;
    task_options.num_threads = 1;
    task_options.stats = &scan.run;
    scan.status = ScanDependency(
        instance, index, dependencies[d], task_options, &scan.found,
        [&winner, d] {
          return winner.load(std::memory_order_relaxed) < d;
        });
    if (scan.found.has_value()) {
      std::size_t cur = winner.load(std::memory_order_relaxed);
      while (d < cur &&
             !winner.compare_exchange_weak(cur, d,
                                           std::memory_order_relaxed)) {
      }
    }
  });
  // Resolve in dependency order: a task only stops early when a strictly
  // lower index won, and that index is consulted first, so everything the
  // resolution loop reads before returning ran to its sequential end.
  for (std::size_t d = 0; d < dependencies.size(); ++d) {
    MergeMatchStats(scans[d].run, options.stats);
    RDX_RETURN_IF_ERROR(scans[d].status);
    if (scans[d].found.has_value()) return std::move(scans[d].found);
  }
  return std::optional<UnsatisfiedTrigger>();
}

// Grounds `disjunct` under `match` with fresh nulls for existential
// variables, returning the child instance.
Result<Instance> ExpandBranch(const Instance& state,
                              const std::vector<Atom>& disjunct,
                              const Assignment& match) {
  Assignment extended = match;
  for (const Atom& a : disjunct) {
    for (Variable v : a.Vars()) {
      if (extended.count(v) == 0) {
        extended.emplace(v, Value::FreshNull());
      }
    }
  }
  Instance child = state;
  for (const Atom& a : disjunct) {
    RDX_ASSIGN_OR_RETURN(Fact f, a.Ground(extended));
    child.AddFact(f);
  }
  return child;
}

// Per-dependency accumulation for one run: time and work attributed to
// the dependency whose violation drove each step. Counts come from the
// sequential main loop (the winning trigger is the lowest dependency
// index, identical at any num_threads); time covers the whole step (scan
// plus expansion) and is only measured when tracing or attribution is on.
struct DepWork {
  uint64_t micros = 0;
  uint64_t fired = 0;  // steps this dependency's violation drove
  uint64_t facts = 0;  // facts materialized across the expanded children
};

// Publishes the per-dependency rows to the "dchase.dep" attribution
// domain and, when tracing, as "dchase.dep" events. `satisfied_us` is the
// time spent on steps that found no violation (branch completion and
// dedup), reported under the pseudo-key "(satisfied)".
void PublishDisjunctiveAttribution(const std::vector<Dependency>& dependencies,
                                   const std::vector<DepWork>& work,
                                   uint64_t satisfied_us) {
  const bool attributing = obs::AttributionEnabled();
  const bool tracing = obs::TracingEnabled();
  if (!attributing && !tracing) return;
  for (std::size_t d = 0; d < dependencies.size(); ++d) {
    std::string label = StrCat("d", d, " ", dependencies[d].ToString());
    if (attributing) {
      obs::Attribution& row = obs::Attribution::Get("dchase.dep", label);
      row.AddTimeMicros(work[d].micros);
      row.AddFired(work[d].fired);
      row.AddFacts(work[d].facts);
    }
    if (tracing) {
      obs::EmitTrace(obs::TraceEvent("dchase.dep")
                         .Add("dep", static_cast<uint64_t>(d))
                         .Add("label", label)
                         .Add("fired", work[d].fired)
                         .Add("new_facts", work[d].facts)
                         .Add("us", work[d].micros));
    }
  }
  if (attributing) {
    obs::Attribution::Get("dchase.dep", "(satisfied)")
        .AddTimeMicros(satisfied_us);
  }
  if (tracing) {
    obs::EmitTrace(obs::TraceEvent("dchase.dep")
                       .Add("dep", int64_t{-1})
                       .Add("label", "(satisfied)")
                       .Add("us", satisfied_us));
  }
}

// One batched publish of a run's totals to the "dchase.*" counters plus
// the "dchase.done" trace event.
void PublishDisjunctiveStats(const DisjunctiveChaseStats& stats,
                             uint64_t worlds, bool completed) {
  static obs::Counter& runs = obs::Counter::Get("dchase.runs");
  static obs::Counter& steps = obs::Counter::Get("dchase.steps");
  static obs::Counter& expanded = obs::Counter::Get("dchase.branches_expanded");
  static obs::Counter& done = obs::Counter::Get("dchase.branches_completed");
  static obs::Counter& deduped = obs::Counter::Get("dchase.branches_deduped");
  static obs::Counter& us = obs::Counter::Get("dchase.us");
  runs.Increment();
  steps.Add(stats.steps);
  expanded.Add(stats.branches_expanded);
  done.Add(stats.branches_completed);
  deduped.Add(stats.branches_deduped);
  us.Add(stats.micros);
  if (obs::TracingEnabled()) {
    obs::EmitTrace(obs::TraceEvent("dchase.done")
                       .Add("steps", stats.steps)
                       .Add("expanded", stats.branches_expanded)
                       .Add("completed_branches", stats.branches_completed)
                       .Add("deduped", stats.branches_deduped)
                       .Add("max_live", stats.max_live_branches)
                       .Add("peak_facts", stats.peak_instance_facts)
                       .Add("worlds", worlds)
                       .Add("completed", completed)
                       .Add("us", stats.micros));
  }
}

}  // namespace

std::string DisjunctiveChaseStats::ToString() const {
  return StrCat("dchase: steps=", steps, " expanded=", branches_expanded,
                " completed=", branches_completed, " deduped=",
                branches_deduped, " max_live=", max_live_branches,
                " peak_facts=", peak_instance_facts, " us=", micros, "\n");
}

Result<DisjunctiveChaseResult> DisjunctiveChase(
    const Instance& input, const std::vector<Dependency>& dependencies,
    const DisjunctiveChaseOptions& options) {
  DisjunctiveChaseResult result;
  DisjunctiveChaseStats& stats = result.stats;
  obs::Span run_span("dchase");
  obs::ScopedTimer run_timer;
  const bool attributed = obs::AttributionEnabled() || obs::TracingEnabled();
  std::vector<DepWork> dep_work(dependencies.size());
  uint64_t satisfied_us = 0;
  std::deque<Instance> queue;
  queue.push_back(input);

  while (!queue.empty()) {
    stats.max_live_branches = std::max<uint64_t>(stats.max_live_branches,
                                                 queue.size());
    if (queue.size() > options.max_branches) {
      stats.micros = run_timer.ElapsedMicros();
      PublishDisjunctiveAttribution(dependencies, dep_work, satisfied_us);
      PublishDisjunctiveStats(stats, result.combined.size(),
                              /*completed=*/false);
      return Status::ResourceExhausted(
          StrCat("disjunctive chase exceeded max_branches=",
                 options.max_branches, " after ", stats.steps, " steps (",
                 stats.branches_completed, " branches completed)"));
    }
    if (++result.steps > options.max_steps) {
      stats.steps = result.steps;
      stats.micros = run_timer.ElapsedMicros();
      PublishDisjunctiveAttribution(dependencies, dep_work, satisfied_us);
      PublishDisjunctiveStats(stats, result.combined.size(),
                              /*completed=*/false);
      return Status::ResourceExhausted(
          StrCat("disjunctive chase exceeded max_steps=", options.max_steps,
                 " (", queue.size() + 1, " branches live, ",
                 stats.branches_completed, " completed)"));
    }
    stats.steps = result.steps;
    Instance state = std::move(queue.front());
    queue.pop_front();
    stats.peak_instance_facts =
        std::max<uint64_t>(stats.peak_instance_facts, state.size());

    std::optional<obs::ScopedTimer> step_timer;
    uint64_t step_us = 0;
    if (attributed) step_timer.emplace(nullptr, &step_us);
    RDX_ASSIGN_OR_RETURN(
        std::optional<UnsatisfiedTrigger> trigger,
        FindUnsatisfiedTrigger(state, dependencies, options.match_options,
                               options.num_threads));
    if (!trigger.has_value()) {
      ++stats.branches_completed;
      // Completed branch: dedup (exact, then up to hom-equivalence).
      bool duplicate = false;
      for (const Instance& earlier : result.combined) {
        if (earlier == state) {
          duplicate = true;
          break;
        }
        if (options.dedup_hom_equivalent) {
          RDX_ASSIGN_OR_RETURN(bool equiv, AreHomEquivalent(earlier, state));
          if (equiv) {
            duplicate = true;
            break;
          }
        }
      }
      if (!duplicate) {
        result.combined.push_back(std::move(state));
      } else {
        ++stats.branches_deduped;
      }
      step_timer.reset();
      satisfied_us += step_us;
      continue;
    }

    uint64_t facts_this_step = 0;
    for (const auto& disjunct : trigger->dep->disjuncts()) {
      RDX_ASSIGN_OR_RETURN(Instance child,
                           ExpandBranch(state, disjunct, trigger->match));
      facts_this_step += child.size() - state.size();
      queue.push_back(std::move(child));
      ++stats.branches_expanded;
    }
    step_timer.reset();
    DepWork& winner = dep_work[trigger->dep - dependencies.data()];
    winner.micros += step_us;
    winner.fired += 1;
    winner.facts += facts_this_step;
  }

  // Added-facts view.
  result.added.reserve(result.combined.size());
  for (const Instance& combined : result.combined) {
    Instance added;
    for (const Fact& f : combined.facts()) {
      if (!input.Contains(f)) added.AddFact(f);
    }
    result.added.push_back(std::move(added));
  }
  stats.micros = run_timer.ElapsedMicros();
  run_span.Arg("steps", stats.steps)
      .Arg("worlds", static_cast<uint64_t>(result.combined.size()));
  PublishDisjunctiveAttribution(dependencies, dep_work, satisfied_us);
  PublishDisjunctiveStats(stats, result.combined.size(), /*completed=*/true);
  return result;
}

}  // namespace rdx
