#include "chase/disjunctive_chase.h"

#include <deque>
#include <optional>
#include <unordered_set>

#include "base/strings.h"
#include "core/fact_index.h"
#include "core/homomorphism.h"

namespace rdx {
namespace {

struct UnsatisfiedTrigger {
  const Dependency* dep;
  Assignment match;
};

// Finds the first body match of some dependency with no satisfiable head
// disjunct, or nullopt if `instance` satisfies all dependencies.
Result<std::optional<UnsatisfiedTrigger>> FindUnsatisfiedTrigger(
    const Instance& instance, const std::vector<Dependency>& dependencies,
    const MatchOptions& options) {
  FactIndex index(instance);
  for (const Dependency& dep : dependencies) {
    std::optional<UnsatisfiedTrigger> found;
    Status inner_error = Status::OK();
    Status status = EnumerateMatches(
        dep.body(), instance, index,
        [&](const Assignment& match) {
          // Check whether some disjunct is satisfiable under `match`.
          for (const auto& disjunct : dep.disjuncts()) {
            bool satisfied = false;
            Status s = EnumerateMatches(
                disjunct, instance, index,
                [&](const Assignment&) {
                  satisfied = true;
                  return false;
                },
                options, match);
            if (!s.ok()) {
              inner_error = s;
              return false;
            }
            if (satisfied) return true;  // this match is fine; keep going
          }
          found = UnsatisfiedTrigger{&dep, match};
          return false;  // stop at the first violation
        },
        options);
    RDX_RETURN_IF_ERROR(status);
    RDX_RETURN_IF_ERROR(inner_error);
    if (found.has_value()) return found;
  }
  return std::optional<UnsatisfiedTrigger>();
}

// Grounds `disjunct` under `match` with fresh nulls for existential
// variables, returning the child instance.
Result<Instance> ExpandBranch(const Instance& state,
                              const std::vector<Atom>& disjunct,
                              const Assignment& match) {
  Assignment extended = match;
  for (const Atom& a : disjunct) {
    for (Variable v : a.Vars()) {
      if (extended.count(v) == 0) {
        extended.emplace(v, Value::FreshNull());
      }
    }
  }
  Instance child = state;
  for (const Atom& a : disjunct) {
    RDX_ASSIGN_OR_RETURN(Fact f, a.Ground(extended));
    child.AddFact(f);
  }
  return child;
}

}  // namespace

Result<DisjunctiveChaseResult> DisjunctiveChase(
    const Instance& input, const std::vector<Dependency>& dependencies,
    const DisjunctiveChaseOptions& options) {
  DisjunctiveChaseResult result;
  std::deque<Instance> queue;
  queue.push_back(input);

  while (!queue.empty()) {
    if (queue.size() > options.max_branches) {
      return Status::ResourceExhausted(
          StrCat("disjunctive chase exceeded max_branches=",
                 options.max_branches));
    }
    if (++result.steps > options.max_steps) {
      return Status::ResourceExhausted(
          StrCat("disjunctive chase exceeded max_steps=", options.max_steps));
    }
    Instance state = std::move(queue.front());
    queue.pop_front();

    RDX_ASSIGN_OR_RETURN(
        std::optional<UnsatisfiedTrigger> trigger,
        FindUnsatisfiedTrigger(state, dependencies, options.match_options));
    if (!trigger.has_value()) {
      // Completed branch: dedup (exact, then up to hom-equivalence).
      bool duplicate = false;
      for (const Instance& earlier : result.combined) {
        if (earlier == state) {
          duplicate = true;
          break;
        }
        if (options.dedup_hom_equivalent) {
          RDX_ASSIGN_OR_RETURN(bool equiv, AreHomEquivalent(earlier, state));
          if (equiv) {
            duplicate = true;
            break;
          }
        }
      }
      if (!duplicate) {
        result.combined.push_back(std::move(state));
      }
      continue;
    }

    for (const auto& disjunct : trigger->dep->disjuncts()) {
      RDX_ASSIGN_OR_RETURN(Instance child,
                           ExpandBranch(state, disjunct, trigger->match));
      queue.push_back(std::move(child));
    }
  }

  // Added-facts view.
  result.added.reserve(result.combined.size());
  for (const Instance& combined : result.combined) {
    Instance added;
    for (const Fact& f : combined.facts()) {
      if (!input.Contains(f)) added.AddFact(f);
    }
    result.added.push_back(std::move(added));
  }
  return result;
}

}  // namespace rdx
