#ifndef RDX_CHASE_EGD_CHASE_H_
#define RDX_CHASE_EGD_CHASE_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "chase/chase.h"
#include "core/egd.h"

namespace rdx {

/// Observability stats for a tgd+egd chase run. `merges` splits into
/// null-to-null unifications and null-to-constant promotions (the two
/// repair shapes the paper's reference chase distinguishes).
struct EgdChaseStats {
  uint64_t rounds = 0;                     // tgd-fixpoint/egd-repair cycles
  uint64_t tgd_facts_added = 0;            // facts added across tgd passes
  uint64_t merges = 0;                     // total egd unification steps
  uint64_t null_null_merges = 0;           // null unified with null
  uint64_t null_constant_promotions = 0;   // null promoted to a constant
  uint64_t micros = 0;

  std::string ToString() const;
};

/// Outcome of a chase with tgds and egds.
struct EgdChaseResult {
  /// The final combined instance (meaningless if `failed`).
  Instance combined;

  /// Facts beyond the input, after null unification: combined minus the
  /// image of the input under `merge_map`. An input fact whose nulls were
  /// rewritten by merges is NOT reported here — only genuinely
  /// chase-created facts are (themselves rendered post-unification).
  Instance added;

  /// Cumulative value unification performed by the egd repair passes:
  /// maps each merged-away value to its final representative. Applying it
  /// to the input yields the input's image inside `combined`.
  ValueMap merge_map;

  /// True if the chase FAILED: some egd equated two distinct constants.
  /// In classical data exchange a failing chase means the source admits
  /// no solution under the target constraints.
  bool failed = false;
  std::string failure_reason;

  /// Number of null-unification steps performed.
  uint64_t merges = 0;

  /// Per-run engine statistics (mirrored into the process-wide "egd.*"
  /// counters; "egd.round" / "egd.done" are emitted when tracing).
  EgdChaseStats stats;
};

/// The classical chase with tgds AND egds (the paper's reference [8]):
/// alternate tgd fixpoints with egd repair passes. An egd violation with
/// a null on either side unifies the null with the other value across the
/// whole instance; a violation between two distinct constants fails the
/// chase (reported in the result, not as an error Status).
///
/// Egds make keys expressible: chasing the reverse-exchange output of a
/// vertical split with the key egd of the source relation re-joins the
/// split halves — recovering exactly what the tgd-only framework
/// provably loses (see the schema-evolution examples).
Result<EgdChaseResult> ChaseWithEgds(const Instance& input,
                                     const std::vector<Dependency>& tgds,
                                     const std::vector<Egd>& egds,
                                     const ChaseOptions& options = {});

}  // namespace rdx

#endif  // RDX_CHASE_EGD_CHASE_H_
