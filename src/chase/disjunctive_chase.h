#ifndef RDX_CHASE_DISJUNCTIVE_CHASE_H_
#define RDX_CHASE_DISJUNCTIVE_CHASE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "chase/chase.h"
#include "core/dependency.h"
#include "core/instance.h"

namespace rdx {

struct DisjunctiveChaseOptions {
  /// Maximum number of simultaneously live branches; exceeded =>
  /// ResourceExhausted.
  uint64_t max_branches = 100'000;

  /// Maximum total expansion steps across all branches.
  uint64_t max_steps = 1'000'000;

  /// If true (default), drop result instances that are homomorphically
  /// equivalent to an earlier result (the set semantics of Section 6 only
  /// cares about results up to homomorphic equivalence). Exact duplicates
  /// are always dropped.
  bool dedup_hom_equivalent = true;

  /// Threads racing the per-dependency violation scans (rdx::par). The
  /// winner is always the lowest dependency index with a violation — the
  /// same trigger the sequential scan finds — so branching order and the
  /// final result set are identical for every value. 1 (the default) is
  /// exactly the sequential code path. See docs/parallelism.md.
  uint64_t num_threads = 1;

  MatchOptions match_options;
};

/// Observability stats for a disjunctive chase run. The "universe" figures
/// describe the branch tree the search actually explored.
struct DisjunctiveChaseStats {
  uint64_t steps = 0;               // branches dequeued and examined
  uint64_t branches_expanded = 0;   // children enqueued (one per disjunct)
  uint64_t branches_completed = 0;  // branches satisfying all dependencies
  uint64_t branches_deduped = 0;    // completed branches dropped as duplicate
  uint64_t max_live_branches = 0;   // queue high-water mark
  uint64_t peak_instance_facts = 0; // largest branch instance seen
  uint64_t micros = 0;

  std::string ToString() const;
};

/// Outcome of a disjunctive chase: the set of completed branch instances.
struct DisjunctiveChaseResult {
  /// Combined instances (input facts plus the facts each branch added).
  std::vector<Instance> combined;

  /// The added-facts view of each branch, aligned with `combined`. For a
  /// reverse mapping M' = (T, S, Σ') applied to a T-instance J, this is
  /// the set chase_Σ'(J) = {V1, ..., Vk} of Section 6.
  std::vector<Instance> added;

  uint64_t steps = 0;

  /// Per-run engine statistics (mirrored into the process-wide "dchase.*"
  /// counters; "dchase.done" is emitted when a trace sink is installed).
  DisjunctiveChaseStats stats;
};

/// Runs the disjunctive chase of `input` with `dependencies` (Section 6):
/// each unsatisfied trigger branches the current instance into one child
/// per head disjunct; a branch completes when it satisfies all
/// dependencies. Returns every completed branch.
///
/// Plain tgds are handled as one-disjunct dependencies, so a mixed set is
/// fine. Inequality and Constant body atoms are supported.
Result<DisjunctiveChaseResult> DisjunctiveChase(
    const Instance& input, const std::vector<Dependency>& dependencies,
    const DisjunctiveChaseOptions& options = {});

}  // namespace rdx

#endif  // RDX_CHASE_DISJUNCTIVE_CHASE_H_
