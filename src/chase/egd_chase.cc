#include "chase/egd_chase.h"

#include <optional>

#include "base/metrics.h"
#include "base/strings.h"
#include "base/trace.h"

namespace rdx {
namespace {

struct EgdViolation {
  Value lhs;
  Value rhs;
};

// Finds the first egd violation in `instance`: a body match under which
// some equated pair evaluates to distinct values.
Result<std::optional<EgdViolation>> FindViolation(
    const Instance& instance, const std::vector<Egd>& egds,
    const MatchOptions& options) {
  for (const Egd& egd : egds) {
    std::optional<EgdViolation> found;
    Status status = EnumerateMatches(
        egd.body(), instance,
        [&](const Assignment& match) {
          for (const auto& [a, b] : egd.equalities()) {
            const Value& va = match.at(a);
            const Value& vb = match.at(b);
            if (!(va == vb)) {
              found = EgdViolation{va, vb};
              return false;
            }
          }
          return true;
        },
        options);
    RDX_RETURN_IF_ERROR(status);
    if (found.has_value()) return found;
  }
  return std::optional<EgdViolation>();
}

// One batched publish of a run's totals to the "egd.*" counters plus the
// "egd.done" trace event.
void PublishEgdStats(const EgdChaseStats& stats, bool failed,
                     bool completed) {
  static obs::Counter& runs = obs::Counter::Get("egd.runs");
  static obs::Counter& rounds = obs::Counter::Get("egd.rounds");
  static obs::Counter& merges = obs::Counter::Get("egd.merges");
  static obs::Counter& null_null = obs::Counter::Get("egd.null_null_merges");
  static obs::Counter& promotions =
      obs::Counter::Get("egd.null_constant_promotions");
  static obs::Counter& failures = obs::Counter::Get("egd.failures");
  static obs::Counter& us = obs::Counter::Get("egd.us");
  runs.Increment();
  rounds.Add(stats.rounds);
  merges.Add(stats.merges);
  null_null.Add(stats.null_null_merges);
  promotions.Add(stats.null_constant_promotions);
  if (failed) failures.Increment();
  us.Add(stats.micros);
  if (obs::TracingEnabled()) {
    obs::EmitTrace(obs::TraceEvent("egd.done")
                       .Add("rounds", stats.rounds)
                       .Add("tgd_facts", stats.tgd_facts_added)
                       .Add("merges", stats.merges)
                       .Add("null_null", stats.null_null_merges)
                       .Add("promotions", stats.null_constant_promotions)
                       .Add("failed", failed)
                       .Add("completed", completed)
                       .Add("us", stats.micros));
  }
}

}  // namespace

std::string EgdChaseStats::ToString() const {
  return StrCat("egd chase: rounds=", rounds, " tgd_facts=", tgd_facts_added,
                " merges=", merges, " null_null=", null_null_merges,
                " promotions=", null_constant_promotions, " us=", micros,
                "\n");
}

Result<EgdChaseResult> ChaseWithEgds(const Instance& input,
                                     const std::vector<Dependency>& tgds,
                                     const std::vector<Egd>& egds,
                                     const ChaseOptions& options) {
  EgdChaseResult result;
  result.combined = input;
  EgdChaseStats& stats = result.stats;
  obs::ScopedTimer run_timer;

  for (uint64_t round = 0; round < options.max_rounds; ++round) {
    obs::ScopedTimer round_timer;
    stats.rounds = round + 1;
    // Tgd fixpoint.
    RDX_ASSIGN_OR_RETURN(ChaseResult tgd_step,
                         Chase(result.combined, tgds, options));
    bool tgds_added = tgd_step.combined.size() != result.combined.size();
    stats.tgd_facts_added += tgd_step.stats.facts_added;
    result.combined = std::move(tgd_step.combined);

    // Egd repair pass: merge until clean or failed.
    bool merged_any = false;
    uint64_t round_merges = 0;
    while (true) {
      RDX_ASSIGN_OR_RETURN(
          std::optional<EgdViolation> violation,
          FindViolation(result.combined, egds, options.match_options));
      if (!violation.has_value()) break;
      const Value& a = violation->lhs;
      const Value& b = violation->rhs;
      if (a.IsConstant() && b.IsConstant()) {
        result.failed = true;
        result.failure_reason =
            StrCat("egd equates distinct constants ", a.ToString(), " and ",
                   b.ToString());
        stats.micros = run_timer.ElapsedMicros();
        PublishEgdStats(stats, /*failed=*/true, /*completed=*/true);
        return result;
      }
      // Unify: map the null onto the other value (prefer keeping
      // constants; between two nulls keep the lhs).
      ValueMap unify;
      if (a.IsNull()) {
        unify.emplace(a, b);
        if (b.IsNull()) {
          ++stats.null_null_merges;
        } else {
          ++stats.null_constant_promotions;
        }
      } else {
        unify.emplace(b, a);
        ++stats.null_constant_promotions;
      }
      result.combined = result.combined.Apply(unify);
      ++result.merges;
      ++stats.merges;
      ++round_merges;
      merged_any = true;
      if (result.merges > options.max_new_facts) {
        stats.micros = run_timer.ElapsedMicros();
        PublishEgdStats(stats, /*failed=*/false, /*completed=*/false);
        return Status::ResourceExhausted(
            StrCat("egd chase exceeded ", options.max_new_facts,
                   " merges in round ", round, " (",
                   stats.null_constant_promotions, " null-to-constant "
                   "promotions, ", stats.null_null_merges,
                   " null-null merges)"));
      }
    }

    if (obs::TracingEnabled()) {
      obs::EmitTrace(obs::TraceEvent("egd.round")
                         .Add("round", round)
                         .Add("tgd_facts", tgd_step.stats.facts_added)
                         .Add("merges", round_merges)
                         .Add("us", round_timer.ElapsedMicros()));
    }

    if (!tgds_added && !merged_any) {
      // Joint fixpoint.
      for (const Fact& f : result.combined.facts()) {
        if (!input.Contains(f)) result.added.AddFact(f);
      }
      stats.micros = run_timer.ElapsedMicros();
      PublishEgdStats(stats, /*failed=*/false, /*completed=*/true);
      return result;
    }
  }
  stats.micros = run_timer.ElapsedMicros();
  PublishEgdStats(stats, /*failed=*/false, /*completed=*/false);
  return Status::ResourceExhausted(
      StrCat("egd chase did not converge within max_rounds=",
             options.max_rounds, ": ", stats.tgd_facts_added,
             " tgd facts added and ", stats.merges, " merges performed"));
}

}  // namespace rdx
