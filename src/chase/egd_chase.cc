#include "chase/egd_chase.h"

#include <optional>
#include <unordered_map>
#include <vector>

#include "base/attribution.h"
#include "base/metrics.h"
#include "base/spans.h"
#include "base/strings.h"
#include "base/trace.h"

namespace rdx {
namespace {

// Union-find over instance values for one egd repair pass. Constants
// always win the representative election (they cannot be renamed);
// between two nulls the right-hand side of the union survives, matching
// the historical single-merge direction (lhs null maps onto rhs).
class ValueUnionFind {
 public:
  // Iterative two-pass find: walk to the root, then compress the path.
  // Must not recurse — one egd enumeration batches up to the whole merge
  // budget before the budget check runs, so a parent chain can be as
  // long as max_merges and a per-link stack frame would overflow.
  Value Find(Value v) {
    Value root = v;
    for (auto it = parent_.find(root); it != parent_.end();
         it = parent_.find(root)) {
      root = it->second;
    }
    while (!(v == root)) {
      auto it = parent_.find(v);
      v = it->second;
      it->second = root;  // path compression
    }
    return root;
  }

  // Merges the classes of `a` and `b`. Returns false (and reports the
  // clashing pair) when both representatives are distinct constants —
  // the chase-failure case. Counts the merge kind into `stats`.
  bool Union(Value a, Value b, EgdChaseStats* stats, Value* clash_lhs,
             Value* clash_rhs) {
    Value ra = Find(a);
    Value rb = Find(b);
    if (ra == rb) return true;
    if (ra.IsConstant() && rb.IsConstant()) {
      *clash_lhs = ra;
      *clash_rhs = rb;
      return false;
    }
    if (ra.IsNull() && rb.IsNull()) {
      ++stats->null_null_merges;
    } else {
      ++stats->null_constant_promotions;
    }
    ++stats->merges;
    ++merges_;
    if (ra.IsConstant()) {
      parent_.emplace(rb, ra);
    } else {
      parent_.emplace(ra, rb);  // rb survives (constant, or rhs null)
    }
    return true;
  }

  uint64_t merges() const { return merges_; }

  // The pass's substitution: every merged-away value mapped to its final
  // representative (identity entries omitted).
  ValueMap ToValueMap() {
    ValueMap map;
    map.reserve(parent_.size());
    for (const auto& [v, unused] : parent_) {
      Value root = Find(v);
      if (!(root == v)) map.emplace(v, root);
    }
    return map;
  }

 private:
  std::unordered_map<Value, Value, ValueHash> parent_;
  uint64_t merges_ = 0;
};

// Folds `step` into the cumulative substitution `total` (total := step ∘
// total): existing images are rewritten through `step`, then step's own
// entries are added for values not already remapped.
void ComposeInto(ValueMap* total, const ValueMap& step) {
  for (auto& [from, to] : *total) {
    auto it = step.find(to);
    if (it != step.end()) to = it->second;
  }
  for (const auto& [from, to] : step) {
    total->emplace(from, to);
  }
}

// Per-egd accumulation for one run: sweep time and merges attributed to
// each egd (sweeps are sequential, so the merge counts are deterministic;
// time is only measured when tracing or attribution is on).
struct EgdWork {
  uint64_t micros = 0;
  uint64_t merges = 0;
};

// Publishes the per-egd rows to the "egd.dep" attribution domain and,
// when tracing, as "egd.dep" events.
void PublishEgdAttribution(const std::vector<Egd>& egds,
                           const std::vector<EgdWork>& work) {
  const bool attributing = obs::AttributionEnabled();
  const bool tracing = obs::TracingEnabled();
  if (!attributing && !tracing) return;
  for (std::size_t e = 0; e < egds.size(); ++e) {
    std::string label = StrCat("e", e, " ", egds[e].ToString());
    if (attributing) {
      obs::Attribution& row = obs::Attribution::Get("egd.dep", label);
      row.AddTimeMicros(work[e].micros);
      row.AddFired(work[e].merges);
    }
    if (tracing) {
      obs::EmitTrace(obs::TraceEvent("egd.dep")
                         .Add("dep", static_cast<uint64_t>(e))
                         .Add("label", label)
                         .Add("merges", work[e].merges)
                         .Add("us", work[e].micros));
    }
  }
}

// One batched publish of a run's totals to the "egd.*" counters plus the
// "egd.done" trace event.
void PublishEgdStats(const EgdChaseStats& stats, bool failed,
                     bool completed) {
  static obs::Counter& runs = obs::Counter::Get("egd.runs");
  static obs::Counter& rounds = obs::Counter::Get("egd.rounds");
  static obs::Counter& merges = obs::Counter::Get("egd.merges");
  static obs::Counter& null_null = obs::Counter::Get("egd.null_null_merges");
  static obs::Counter& promotions =
      obs::Counter::Get("egd.null_constant_promotions");
  static obs::Counter& failures = obs::Counter::Get("egd.failures");
  static obs::Counter& us = obs::Counter::Get("egd.us");
  runs.Increment();
  rounds.Add(stats.rounds);
  merges.Add(stats.merges);
  null_null.Add(stats.null_null_merges);
  promotions.Add(stats.null_constant_promotions);
  if (failed) failures.Increment();
  us.Add(stats.micros);
  if (obs::TracingEnabled()) {
    obs::EmitTrace(obs::TraceEvent("egd.done")
                       .Add("rounds", stats.rounds)
                       .Add("tgd_facts", stats.tgd_facts_added)
                       .Add("merges", stats.merges)
                       .Add("null_null", stats.null_null_merges)
                       .Add("promotions", stats.null_constant_promotions)
                       .Add("failed", failed)
                       .Add("completed", completed)
                       .Add("us", stats.micros));
  }
}

}  // namespace

std::string EgdChaseStats::ToString() const {
  return StrCat("egd chase: rounds=", rounds, " tgd_facts=", tgd_facts_added,
                " merges=", merges, " null_null=", null_null_merges,
                " promotions=", null_constant_promotions, " us=", micros,
                "\n");
}

Result<EgdChaseResult> ChaseWithEgds(const Instance& input,
                                     const std::vector<Dependency>& tgds,
                                     const std::vector<Egd>& egds,
                                     const ChaseOptions& options) {
  EgdChaseResult result;
  result.combined = input;
  EgdChaseStats& stats = result.stats;
  obs::Span run_span("egd");
  obs::ScopedTimer run_timer;
  const bool attributed = obs::AttributionEnabled() || obs::TracingEnabled();
  std::vector<EgdWork> egd_work(egds.size());

  for (uint64_t round = 0; round < options.max_rounds; ++round) {
    obs::Span round_span("egd.round");
    round_span.Arg("round", round);
    obs::ScopedTimer round_timer;
    stats.rounds = round + 1;
    // Tgd fixpoint.
    RDX_ASSIGN_OR_RETURN(ChaseResult tgd_step,
                         Chase(result.combined, tgds, options));
    bool tgds_added = tgd_step.combined.size() != result.combined.size();
    stats.tgd_facts_added += tgd_step.stats.facts_added;
    result.combined = std::move(tgd_step.combined);

    // Egd repair: sweep the egds in order, batching every violation one
    // enumeration discovers into a single union-find and applying the
    // resulting substitution once per egd. A merge does NOT restart the
    // scan from the first egd (the historical quadratic-in-merges
    // behaviour); instead the sweep continues with the next egd, and
    // sweeps repeat until one full pass finds no violation. Batching is
    // sound because applying a substitution is a homomorphism: a body
    // match on the pre-merge instance maps to a body match on the
    // post-merge instance, so every batched equality remains a
    // consequence of the egd.
    bool merged_any = false;
    uint64_t round_merges = 0;
    while (true) {
      bool merged_this_sweep = false;
      for (const Egd& egd : egds) {
        std::optional<obs::ScopedTimer> egd_timer;
        uint64_t egd_us = 0;
        if (attributed) egd_timer.emplace(nullptr, &egd_us);
        EgdWork& work = egd_work[&egd - egds.data()];
        ValueUnionFind uf;
        std::optional<std::pair<Value, Value>> clash;
        Status status = EnumerateMatches(
            egd.body(), result.combined,
            [&](const Assignment& match) {
              for (const auto& [a, b] : egd.equalities()) {
                Value clash_lhs, clash_rhs;
                if (!uf.Union(match.at(a), match.at(b), &stats, &clash_lhs,
                              &clash_rhs)) {
                  clash = {clash_lhs, clash_rhs};
                  return false;
                }
              }
              return true;
            },
            options.match_options);
        RDX_RETURN_IF_ERROR(status);
        if (clash.has_value()) {
          result.failed = true;
          result.failure_reason =
              StrCat("egd '", egd.ToString(), "' equates distinct constants ",
                     clash->first.ToString(), " and ",
                     clash->second.ToString());
          stats.micros = run_timer.ElapsedMicros();
          PublishEgdAttribution(egds, egd_work);
          PublishEgdStats(stats, /*failed=*/true, /*completed=*/true);
          return result;
        }
        if (uf.merges() == 0) {
          egd_timer.reset();
          work.micros += egd_us;
          continue;
        }
        ValueMap unify = uf.ToValueMap();
        result.combined = result.combined.Apply(unify);
        ComposeInto(&result.merge_map, unify);
        result.merges += uf.merges();
        round_merges += uf.merges();
        egd_timer.reset();
        work.micros += egd_us;
        work.merges += uf.merges();
        merged_this_sweep = true;
        merged_any = true;
        if (result.merges > options.max_merges) {
          stats.micros = run_timer.ElapsedMicros();
          PublishEgdAttribution(egds, egd_work);
          PublishEgdStats(stats, /*failed=*/false, /*completed=*/false);
          return Status::ResourceExhausted(
              StrCat("egd chase exceeded max_merges=", options.max_merges,
                     " in round ", round, " (",
                     stats.null_constant_promotions, " null-to-constant "
                     "promotions, ", stats.null_null_merges,
                     " null-null merges; last merging egd: '", egd.ToString(),
                     "')"));
        }
      }
      if (!merged_this_sweep) break;
    }

    if (obs::TracingEnabled()) {
      obs::EmitTrace(obs::TraceEvent("egd.round")
                         .Add("round", round)
                         .Add("tgd_facts", tgd_step.stats.facts_added)
                         .Add("merges", round_merges)
                         .Add("us", round_timer.ElapsedMicros()));
    }

    if (!tgds_added && !merged_any) {
      // Joint fixpoint. The "added" view compares against the input's
      // image under the cumulative unification, so input facts that were
      // merely rewritten by merges are not misreported as chase-added.
      Instance unified_input = input.Apply(result.merge_map);
      for (const Fact& f : result.combined.facts()) {
        if (!unified_input.Contains(f)) result.added.AddFact(f);
      }
      stats.micros = run_timer.ElapsedMicros();
      PublishEgdAttribution(egds, egd_work);
      PublishEgdStats(stats, /*failed=*/false, /*completed=*/true);
      run_span.Arg("rounds", stats.rounds).Arg("merges", stats.merges);
      return result;
    }
  }
  stats.micros = run_timer.ElapsedMicros();
  PublishEgdAttribution(egds, egd_work);
  PublishEgdStats(stats, /*failed=*/false, /*completed=*/false);
  return Status::ResourceExhausted(
      StrCat("egd chase did not converge within max_rounds=",
             options.max_rounds, ": ", stats.tgd_facts_added,
             " tgd facts added and ", stats.merges, " merges performed"));
}

}  // namespace rdx
