#include "chase/egd_chase.h"

#include <optional>

#include "base/strings.h"

namespace rdx {
namespace {

struct EgdViolation {
  Value lhs;
  Value rhs;
};

// Finds the first egd violation in `instance`: a body match under which
// some equated pair evaluates to distinct values.
Result<std::optional<EgdViolation>> FindViolation(
    const Instance& instance, const std::vector<Egd>& egds,
    const MatchOptions& options) {
  for (const Egd& egd : egds) {
    std::optional<EgdViolation> found;
    Status status = EnumerateMatches(
        egd.body(), instance,
        [&](const Assignment& match) {
          for (const auto& [a, b] : egd.equalities()) {
            const Value& va = match.at(a);
            const Value& vb = match.at(b);
            if (!(va == vb)) {
              found = EgdViolation{va, vb};
              return false;
            }
          }
          return true;
        },
        options);
    RDX_RETURN_IF_ERROR(status);
    if (found.has_value()) return found;
  }
  return std::optional<EgdViolation>();
}

}  // namespace

Result<EgdChaseResult> ChaseWithEgds(const Instance& input,
                                     const std::vector<Dependency>& tgds,
                                     const std::vector<Egd>& egds,
                                     const ChaseOptions& options) {
  EgdChaseResult result;
  result.combined = input;

  for (uint64_t round = 0; round < options.max_rounds; ++round) {
    // Tgd fixpoint.
    RDX_ASSIGN_OR_RETURN(ChaseResult tgd_step,
                         Chase(result.combined, tgds, options));
    bool tgds_added = tgd_step.combined.size() != result.combined.size();
    result.combined = std::move(tgd_step.combined);

    // Egd repair pass: merge until clean or failed.
    bool merged_any = false;
    while (true) {
      RDX_ASSIGN_OR_RETURN(
          std::optional<EgdViolation> violation,
          FindViolation(result.combined, egds, options.match_options));
      if (!violation.has_value()) break;
      const Value& a = violation->lhs;
      const Value& b = violation->rhs;
      if (a.IsConstant() && b.IsConstant()) {
        result.failed = true;
        result.failure_reason =
            StrCat("egd equates distinct constants ", a.ToString(), " and ",
                   b.ToString());
        return result;
      }
      // Unify: map the null onto the other value (prefer keeping
      // constants; between two nulls keep the lhs).
      ValueMap unify;
      if (a.IsNull()) {
        unify.emplace(a, b);
      } else {
        unify.emplace(b, a);
      }
      result.combined = result.combined.Apply(unify);
      ++result.merges;
      merged_any = true;
      if (result.merges > options.max_new_facts) {
        return Status::ResourceExhausted(
            StrCat("egd chase exceeded ", options.max_new_facts, " merges"));
      }
    }

    if (!tgds_added && !merged_any) {
      // Joint fixpoint.
      for (const Fact& f : result.combined.facts()) {
        if (!input.Contains(f)) result.added.AddFact(f);
      }
      return result;
    }
  }
  return Status::ResourceExhausted(
      StrCat("egd chase did not converge within max_rounds=",
             options.max_rounds));
}

}  // namespace rdx
