#ifndef RDX_CHASE_CHASE_H_
#define RDX_CHASE_CHASE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "core/dependency.h"
#include "core/instance.h"
#include "core/match.h"

namespace rdx {

struct ChaseOptions {
  /// Maximum number of fixpoint rounds before giving up with
  /// ResourceExhausted. Chasing with cross-schema tgds (s-t or
  /// target-to-source) terminates in two rounds; the bound only matters for
  /// same-schema dependency sets, which may not terminate.
  uint64_t max_rounds = 1000;

  /// Maximum number of facts the chase may add.
  uint64_t max_new_facts = 5'000'000;

  /// Maximum number of egd unification steps (null-null merges plus
  /// null-to-constant promotions) a ChaseWithEgds run may perform before
  /// giving up with ResourceExhausted. Only the egd chase reads this; it
  /// used to piggyback on max_new_facts, conflating two unrelated
  /// budgets.
  uint64_t max_merges = 1'000'000;

  /// Semi-naive trigger discovery: from the second round on, only
  /// enumerate body matches that touch a fact added in the previous round
  /// (every genuinely new trigger must). Semantically equivalent to the
  /// naive strategy; exposed as a switch for the E1 ablation benchmark.
  bool use_semi_naive = true;

  /// Threads used for per-round trigger enumeration (rdx::par). Firing is
  /// always sequential over the snapshotted trigger list, so the chase
  /// result — including fresh-null allocation and the per-round stats —
  /// is identical for every value of num_threads. 1 (the default) is
  /// exactly the sequential code path. See docs/parallelism.md.
  uint64_t num_threads = 1;

  MatchOptions match_options;
};

/// Per-round breakdown of a chase run (one entry per fixpoint round,
/// including the final quiescent round that discovers no trigger fires).
struct ChaseRoundStats {
  uint64_t round = 0;                // 0-based
  uint64_t frontier = 0;             // delta facts driving semi-naive discovery
  uint64_t triggers_enumerated = 0;  // body matches found this round
  uint64_t triggers_fired = 0;       // matches whose head had to be created
  uint64_t triggers_satisfied = 0;   // matches skipped: head already held
  uint64_t facts_added = 0;          // new facts materialized this round
  uint64_t micros = 0;               // wall time of the round
};

/// Per-dependency totals for a chase run, in input dependency order.
/// Trigger and fact counts come from the deterministic sections (the
/// snapshotted trigger list and the sequential firing loop), so they are
/// identical at every num_threads. `micros` — wall time enumerating and
/// firing on behalf of the dependency — is only measured when tracing or
/// attribution is enabled (base/attribution.h) and stays 0 otherwise.
struct ChaseDepStats {
  uint64_t dep = 0;                  // index into the input dependency list
  std::string label;                 // "d<i> <dependency>"
  uint64_t triggers_enumerated = 0;
  uint64_t triggers_fired = 0;
  uint64_t triggers_satisfied = 0;
  uint64_t facts_added = 0;
  uint64_t micros = 0;
};

/// Aggregate observability stats for a chase run. Totals equal the sums of
/// the per-round entries; `rounds` mirrors ChaseResult::rounds.
struct ChaseStats {
  uint64_t rounds = 0;
  uint64_t triggers_enumerated = 0;
  uint64_t triggers_fired = 0;
  uint64_t triggers_satisfied = 0;
  uint64_t facts_added = 0;
  uint64_t micros = 0;
  std::vector<ChaseRoundStats> per_round;
  std::vector<ChaseDepStats> per_dependency;  // one entry per dependency

  /// Human-readable multi-line summary: one header line with the totals
  /// followed by one line per round and one per dependency.
  std::string ToString() const;
};

/// Outcome of a (standard) chase run.
struct ChaseResult {
  /// The input instance together with all facts the chase added. For a
  /// schema mapping M = (S, T, Σ) and an S-instance I, this is the combined
  /// instance (I, chase_M(I)).
  Instance combined;

  /// Only the facts added by the chase. For s-t tgds this is exactly the
  /// canonical universal solution chase_M(I) (Proposition 3.11).
  Instance added;

  uint64_t rounds = 0;

  /// Per-run engine statistics (also mirrored into the process-wide
  /// "chase.*" counters and, when a trace sink is installed, emitted as
  /// "chase.round" / "chase.done" events).
  ChaseStats stats;
};

/// Runs the standard (non-oblivious) chase of `input` with `dependencies`
/// (plain tgds only — no disjunction; Constant and inequality body atoms
/// are allowed). A trigger fires only if no extension of the body match
/// satisfies the head; firing instantiates existential variables with
/// globally fresh nulls.
///
/// The result is deterministic: rounds snapshot the trigger set, triggers
/// fire in dependency order then match order, and a trigger whose head
/// became satisfied earlier in the same round is skipped.
Result<ChaseResult> Chase(const Instance& input,
                          const std::vector<Dependency>& dependencies,
                          const ChaseOptions& options = {});

/// True if `instance` satisfies `dependency`: every body match has a head
/// disjunct satisfiable by some extension of the match. For a pair (I, J)
/// and s-t tgds, call with the combined instance Instance::Union(I, J)
/// (source and target schemas are disjoint, so no confusion arises).
Result<bool> Satisfies(const Instance& instance, const Dependency& dependency,
                       const MatchOptions& options = {});

/// True if `instance` satisfies every dependency in `dependencies`.
Result<bool> SatisfiesAll(const Instance& instance,
                          const std::vector<Dependency>& dependencies,
                          const MatchOptions& options = {});

}  // namespace rdx

#endif  // RDX_CHASE_CHASE_H_
