#ifndef RDX_CHASE_CHASE_H_
#define RDX_CHASE_CHASE_H_

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "core/dependency.h"
#include "core/instance.h"
#include "core/match.h"

namespace rdx {

struct ChaseOptions {
  /// Maximum number of fixpoint rounds before giving up with
  /// ResourceExhausted. Chasing with cross-schema tgds (s-t or
  /// target-to-source) terminates in two rounds; the bound only matters for
  /// same-schema dependency sets, which may not terminate.
  uint64_t max_rounds = 1000;

  /// Maximum number of facts the chase may add.
  uint64_t max_new_facts = 5'000'000;

  /// Semi-naive trigger discovery: from the second round on, only
  /// enumerate body matches that touch a fact added in the previous round
  /// (every genuinely new trigger must). Semantically equivalent to the
  /// naive strategy; exposed as a switch for the E1 ablation benchmark.
  bool use_semi_naive = true;

  MatchOptions match_options;
};

/// Outcome of a (standard) chase run.
struct ChaseResult {
  /// The input instance together with all facts the chase added. For a
  /// schema mapping M = (S, T, Σ) and an S-instance I, this is the combined
  /// instance (I, chase_M(I)).
  Instance combined;

  /// Only the facts added by the chase. For s-t tgds this is exactly the
  /// canonical universal solution chase_M(I) (Proposition 3.11).
  Instance added;

  uint64_t rounds = 0;
};

/// Runs the standard (non-oblivious) chase of `input` with `dependencies`
/// (plain tgds only — no disjunction; Constant and inequality body atoms
/// are allowed). A trigger fires only if no extension of the body match
/// satisfies the head; firing instantiates existential variables with
/// globally fresh nulls.
///
/// The result is deterministic: rounds snapshot the trigger set, triggers
/// fire in dependency order then match order, and a trigger whose head
/// became satisfied earlier in the same round is skipped.
Result<ChaseResult> Chase(const Instance& input,
                          const std::vector<Dependency>& dependencies,
                          const ChaseOptions& options = {});

/// True if `instance` satisfies `dependency`: every body match has a head
/// disjunct satisfiable by some extension of the match. For a pair (I, J)
/// and s-t tgds, call with the combined instance Instance::Union(I, J)
/// (source and target schemas are disjoint, so no confusion arises).
Result<bool> Satisfies(const Instance& instance, const Dependency& dependency,
                       const MatchOptions& options = {});

/// True if `instance` satisfies every dependency in `dependencies`.
Result<bool> SatisfiesAll(const Instance& instance,
                          const std::vector<Dependency>& dependencies,
                          const MatchOptions& options = {});

}  // namespace rdx

#endif  // RDX_CHASE_CHASE_H_
