#ifndef RDX_CHASE_TERMINATION_H_
#define RDX_CHASE_TERMINATION_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "core/dependency.h"

namespace rdx {

/// Which dependency (position) graph the weak-acyclicity check builds.
enum class WeakAcyclicityMode {
  /// FKMP05 Def. 3.9 ["Data Exchange: Semantics and Query Answering" —
  /// the paper's reference [8]]: for a tgd disjunct with existentials,
  /// special edges originate only from universal variables that OCCUR IN
  /// THAT HEAD. This is the textbook criterion and is sound for the
  /// standard chase implemented by Chase(): a trigger whose head is
  /// already satisfied fires no step (the HeadSatisfied gate), which is
  /// exactly the slack the definition exploits.
  kStandardChase,

  /// Stricter graph: special edges originate from EVERY universal
  /// variable of the body, head-occurring or not. This over-approximates
  /// value flow for the standard chase (it rejects sets Def. 3.9
  /// accepts, e.g. {A(x) -> EXISTS z: B(z); B(x) -> A(x)}), but is the
  /// appropriate conservative criterion when analysing an OBLIVIOUS
  /// chase, which fires every trigger regardless of head satisfaction
  /// and so can diverge on such sets.
  kObliviousChase,
};

/// Static chase-termination analysis: weak acyclicity.
///
/// The dependency (position) graph has a node per (relation, position).
/// For every tgd, every universal variable x at body position (R, i), and
/// every disjunct:
///   * a REGULAR edge (R,i) → (S,j) for each occurrence of x at head
///     position (S,j);
///   * a SPECIAL edge (R,i) ⇒ (S,j) for each existential variable at head
///     position (S,j) — drawn from the universal variables selected by
///     `mode` (head-occurring only under kStandardChase, per FKMP05
///     Def. 3.9; all body universals under kObliviousChase).
/// The set is weakly acyclic iff no cycle passes through a special edge;
/// then every (standard) chase sequence terminates in polynomially many
/// steps. The criterion is sufficient, not necessary: rejected sets may
/// still terminate (see termination_test.cc for witnesses).
///
/// Cross-schema dependency sets (s-t tgds, reverse tgds) are trivially
/// weakly acyclic; the analysis matters for same-schema sets, where
/// Chase() otherwise relies on its round budget.
struct WeakAcyclicityReport {
  bool weakly_acyclic = false;

  /// When not weakly acyclic: a human-readable description of one cycle
  /// through a special edge, e.g. "E.2 => E.1 -> E.2".
  std::string cycle_witness;
};

Result<WeakAcyclicityReport> CheckWeakAcyclicity(
    const std::vector<Dependency>& dependencies,
    WeakAcyclicityMode mode = WeakAcyclicityMode::kStandardChase);

}  // namespace rdx

#endif  // RDX_CHASE_TERMINATION_H_
