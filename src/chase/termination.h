#ifndef RDX_CHASE_TERMINATION_H_
#define RDX_CHASE_TERMINATION_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "core/dependency.h"

namespace rdx {

/// Static chase-termination analysis: weak acyclicity [Fagin, Kolaitis,
/// Miller, Popa, "Data Exchange: Semantics and Query Answering" — the
/// paper's reference [8]].
///
/// The dependency (position) graph has a node per (relation, position).
/// For every tgd, every universal variable x at body position (R, i), and
/// every disjunct:
///   * a REGULAR edge (R,i) → (S,j) for each occurrence of x at head
///     position (S,j);
///   * a SPECIAL edge (R,i) ⇒ (S,j) for each existential variable at head
///     position (S,j) — from every universal variable occurring in the
///     body, whether or not x is propagated to this disjunct's head
///     (FKMP05 Def. 3.9).
/// The set is weakly acyclic iff no cycle passes through a special edge;
/// then every chase sequence terminates in polynomially many steps. The
/// criterion is sufficient, not necessary: rejected sets may still
/// terminate (see termination_test.cc for witnesses).
///
/// Cross-schema dependency sets (s-t tgds, reverse tgds) are trivially
/// weakly acyclic; the analysis matters for same-schema sets, where
/// Chase() otherwise relies on its round budget.
struct WeakAcyclicityReport {
  bool weakly_acyclic = false;

  /// When not weakly acyclic: a human-readable description of one cycle
  /// through a special edge, e.g. "E.2 => E.1 -> E.2".
  std::string cycle_witness;
};

Result<WeakAcyclicityReport> CheckWeakAcyclicity(
    const std::vector<Dependency>& dependencies);

}  // namespace rdx

#endif  // RDX_CHASE_TERMINATION_H_
