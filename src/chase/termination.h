#ifndef RDX_CHASE_TERMINATION_H_
#define RDX_CHASE_TERMINATION_H_

#include <string>
#include <vector>

#include "analysis/position_graph.h"
#include "base/status.h"
#include "core/dependency.h"

namespace rdx {

// WeakAcyclicityMode lives in analysis/position_graph.h (the graph is
// shared with the static analyzer); it is re-exported here so existing
// callers keep compiling unchanged.

/// Static chase-termination analysis: weak acyclicity.
///
/// The dependency (position) graph has a node per (relation, position).
/// For every tgd, every universal variable x at body position (R, i), and
/// every disjunct:
///   * a REGULAR edge (R,i) → (S,j) for each occurrence of x at head
///     position (S,j);
///   * a SPECIAL edge (R,i) ⇒ (S,j) for each existential variable at head
///     position (S,j) — drawn from the universal variables selected by
///     `mode` (head-occurring only under kStandardChase, per FKMP05
///     Def. 3.9; all body universals under kObliviousChase).
/// The set is weakly acyclic iff no cycle passes through a special edge;
/// then every (standard) chase sequence terminates in polynomially many
/// steps. The criterion is sufficient, not necessary: rejected sets may
/// still terminate (see termination_test.cc for witnesses).
///
/// Cross-schema dependency sets (s-t tgds, reverse tgds) are trivially
/// weakly acyclic; the analysis matters for same-schema sets, where
/// Chase() otherwise relies on its round budget.
///
/// This is a thin wrapper over PositionGraph (analysis/position_graph.h),
/// which additionally exposes the SCC condensation and per-position ranks
/// for the static chase-size bound.
struct WeakAcyclicityReport {
  bool weakly_acyclic = false;

  /// When not weakly acyclic: a human-readable description of one cycle
  /// through a special edge, e.g. "E.2 => E.1 -> E.2".
  std::string cycle_witness;
};

Result<WeakAcyclicityReport> CheckWeakAcyclicity(
    const std::vector<Dependency>& dependencies,
    WeakAcyclicityMode mode = WeakAcyclicityMode::kStandardChase);

}  // namespace rdx

#endif  // RDX_CHASE_TERMINATION_H_
