#include "chase/chase.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <set>

#include "base/attribution.h"
#include "base/metrics.h"
#include "base/parallel_for.h"
#include "base/spans.h"
#include "base/strings.h"
#include "base/trace.h"
#include "core/fact_index.h"

namespace rdx {
namespace {

// True if some disjunct of `dep` is satisfiable in `instance` under an
// extension of `match` (existential variables free).
Result<bool> HeadSatisfied(const Instance& instance, const FactIndex& index,
                           const Dependency& dep, const Assignment& match,
                           const MatchOptions& options) {
  for (const auto& disjunct : dep.disjuncts()) {
    bool satisfied = false;
    Status status = EnumerateMatches(
        disjunct, instance, index,
        [&](const Assignment&) {
          satisfied = true;
          return false;  // one witness suffices
        },
        options, match);
    RDX_RETURN_IF_ERROR(status);
    if (satisfied) return true;
  }
  return false;
}

// Grounds `disjunct` under `match`, instantiating existential variables
// with globally fresh nulls, and adds the facts to `instance`. Newly added
// facts are appended to `added_facts`.
Result<uint64_t> FireDisjunct(const std::vector<Atom>& disjunct,
                              const Assignment& match, Instance* instance,
                              std::vector<Fact>* added_facts) {
  Assignment extended = match;
  for (const Atom& a : disjunct) {
    for (Variable v : a.Vars()) {
      if (extended.count(v) == 0) {
        extended.emplace(v, Value::FreshNull());
      }
    }
  }
  uint64_t added = 0;
  for (const Atom& a : disjunct) {
    RDX_ASSIGN_OR_RETURN(Fact f, a.Ground(extended));
    if (instance->AddFact(f)) {
      ++added;
      added_facts->push_back(std::move(f));
    }
  }
  return added;
}

struct Trigger {
  const Dependency* dep;
  Assignment match;
};

// Canonical key for trigger dedup under semi-naive enumeration (the same
// match can be discovered from several delta facts).
std::vector<uint64_t> TriggerKey(const Dependency* dep,
                                 const Assignment& match) {
  std::vector<uint64_t> key;
  key.reserve(match.size() * 2 + 1);
  key.push_back(reinterpret_cast<uintptr_t>(dep));
  std::vector<std::pair<uint32_t, uint64_t>> entries;
  entries.reserve(match.size());
  for (const auto& [var, value] : match) {
    entries.emplace_back(var.id(),
                         (static_cast<uint64_t>(value.kind()) << 32) |
                             value.id());
  }
  std::sort(entries.begin(), entries.end());
  for (const auto& [var_id, packed] : entries) {
    key.push_back(var_id);
    key.push_back(packed);
  }
  return key;
}

// Attempts to pre-bind `atom`'s variables so that it grounds to `fact`
// (the semi-naive anchor). Returns nullopt on mismatch.
std::optional<Assignment> AnchorSeed(const Atom& atom, const Fact& fact) {
  Assignment seed;
  const std::vector<Term>& terms = atom.terms();
  const std::vector<Value>& args = fact.args();
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (terms[i].IsConstant()) {
      if (!(terms[i].constant() == args[i])) return std::nullopt;
      continue;
    }
    auto it = seed.find(terms[i].variable());
    if (it != seed.end()) {
      if (!(it->second == args[i])) return std::nullopt;
    } else {
      seed.emplace(terms[i].variable(), args[i]);
    }
  }
  return seed;
}

// Adds a task-local MatchStats into the caller's accumulator (the
// accumulator pointer is not thread-safe, so parallel enumeration tasks
// record locally and merge here, in task order, after the join).
void MergeMatchStats(const MatchStats& run, MatchStats* accumulator) {
  if (accumulator == nullptr) return;
  accumulator->enumerations += run.enumerations;
  accumulator->steps += run.steps;
  accumulator->candidates += run.candidates;
  accumulator->matches += run.matches;
}

// One semi-naive enumeration unit: dependency `dep` with its body anchored
// at a delta fact through `seed`. Tasks are built in the exact order the
// sequential loop nest visits them, so merging task results in task order
// (under the TriggerKey dedup) reproduces the sequential trigger list.
struct EnumerationTask {
  const Dependency* dep;
  Assignment seed;
};

struct EnumerationResult {
  std::vector<Assignment> matches;
  MatchStats run;
  uint64_t micros = 0;  // task wall time; only measured when `timed`
  Status status = Status::OK();
};

// Runs every task (each one a full sequential EnumerateMatches over a
// shared snapshot index) across `num_threads` threads. Results land in
// task order regardless of scheduling.
std::vector<EnumerationResult> RunEnumerationTasks(
    const std::vector<EnumerationTask>& tasks, const Instance& instance,
    const FactIndex& index, const MatchOptions& match_options,
    uint64_t num_threads, bool timed) {
  std::vector<EnumerationResult> results(tasks.size());
  par::ParallelFor(num_threads, tasks.size(), [&](std::size_t t) {
    EnumerationResult& r = results[t];
    MatchOptions task_options = match_options;
    task_options.num_threads = 1;
    task_options.stats = &r.run;
    std::optional<obs::ScopedTimer> timer;
    if (timed) timer.emplace(nullptr, &r.micros);
    r.status = EnumerateMatches(
        tasks[t].dep->body(), instance, index,
        [&](const Assignment& match) {
          r.matches.push_back(match);
          return true;
        },
        task_options, tasks[t].seed);
  });
  return results;
}

// Publishes a finished run's totals to the process-wide "chase.*"
// counters (one batched atomic add per counter) and, when tracing, emits
// the "chase.done" event.
void PublishChaseStats(const ChaseStats& stats, bool completed) {
  static obs::Counter& runs = obs::Counter::Get("chase.runs");
  static obs::Counter& rounds = obs::Counter::Get("chase.rounds");
  static obs::Counter& enumerated =
      obs::Counter::Get("chase.triggers_enumerated");
  static obs::Counter& fired = obs::Counter::Get("chase.triggers_fired");
  static obs::Counter& satisfied =
      obs::Counter::Get("chase.triggers_satisfied");
  static obs::Counter& added = obs::Counter::Get("chase.facts_added");
  static obs::Counter& us = obs::Counter::Get("chase.us");
  runs.Increment();
  rounds.Add(stats.rounds);
  enumerated.Add(stats.triggers_enumerated);
  fired.Add(stats.triggers_fired);
  satisfied.Add(stats.triggers_satisfied);
  added.Add(stats.facts_added);
  us.Add(stats.micros);
  static obs::Histogram& round_us = obs::Histogram::Get("chase.round.us");
  static obs::Histogram& round_facts =
      obs::Histogram::Get("chase.round.facts");
  for (const ChaseRoundStats& r : stats.per_round) {
    round_us.Record(r.micros);
    round_facts.Record(r.facts_added);
  }
  // Per-dependency attribution: the run's wall time splits into the time
  // measured on behalf of each dependency plus an "(overhead)" residual
  // (index builds, dedup, bookkeeping), so the chase.dep rows sum to the
  // run's span — the invariant tools/rdx_prof checks.
  uint64_t attributed_us = 0;
  for (const ChaseDepStats& d : stats.per_dependency) {
    attributed_us += d.micros;
  }
  const uint64_t overhead_us =
      stats.micros > attributed_us ? stats.micros - attributed_us : 0;
  if (obs::AttributionEnabled()) {
    for (const ChaseDepStats& d : stats.per_dependency) {
      obs::Attribution& row = obs::Attribution::Get("chase.dep", d.label);
      row.AddTimeMicros(d.micros);
      row.AddFired(d.triggers_fired);
      row.AddFacts(d.facts_added);
    }
    obs::Attribution::Get("chase.dep", "(overhead)")
        .AddTimeMicros(overhead_us);
    for (const ChaseRoundStats& r : stats.per_round) {
      obs::Attribution& row = obs::Attribution::Get(
          "chase.round", StrCat("round ", r.round));
      row.AddTimeMicros(r.micros);
      row.AddFired(r.triggers_fired);
      row.AddFacts(r.facts_added);
    }
  }
  if (obs::TracingEnabled()) {
    for (const ChaseDepStats& d : stats.per_dependency) {
      obs::EmitTrace(obs::TraceEvent("chase.dep")
                         .Add("dep", d.dep)
                         .Add("label", d.label)
                         .Add("triggers", d.triggers_enumerated)
                         .Add("fired", d.triggers_fired)
                         .Add("satisfied", d.triggers_satisfied)
                         .Add("new_facts", d.facts_added)
                         .Add("us", d.micros));
    }
    obs::EmitTrace(obs::TraceEvent("chase.dep")
                       .Add("dep", int64_t{-1})
                       .Add("label", "(overhead)")
                       .Add("us", overhead_us));
    obs::EmitTrace(obs::TraceEvent("chase.done")
                       .Add("rounds", stats.rounds)
                       .Add("triggers", stats.triggers_enumerated)
                       .Add("fired", stats.triggers_fired)
                       .Add("new_facts", stats.facts_added)
                       .Add("completed", completed)
                       .Add("us", stats.micros));
  }
}

}  // namespace

std::string ChaseStats::ToString() const {
  std::string out = StrCat(
      "chase: rounds=", rounds, " triggers=", triggers_enumerated,
      " fired=", triggers_fired, " satisfied=", triggers_satisfied,
      " new_facts=", facts_added, " us=", micros, "\n");
  for (const ChaseRoundStats& r : per_round) {
    out += StrCat("  round ", r.round, ": frontier=", r.frontier,
                  " triggers=", r.triggers_enumerated, " fired=",
                  r.triggers_fired, " satisfied=", r.triggers_satisfied,
                  " new_facts=", r.facts_added, " us=", r.micros, "\n");
  }
  for (const ChaseDepStats& d : per_dependency) {
    out += StrCat("  ", d.label, ": triggers=", d.triggers_enumerated,
                  " fired=", d.triggers_fired, " satisfied=",
                  d.triggers_satisfied, " new_facts=", d.facts_added,
                  " us=", d.micros, "\n");
  }
  return out;
}

Result<ChaseResult> Chase(const Instance& input,
                          const std::vector<Dependency>& dependencies,
                          const ChaseOptions& options) {
  for (const Dependency& dep : dependencies) {
    if (dep.HasDisjunction()) {
      return Status::InvalidArgument(
          StrCat("Chase does not support disjunctive dependencies (use "
                 "DisjunctiveChase): ",
                 dep.Describe()));
    }
  }

  ChaseResult result;
  result.combined = input;
  ChaseStats& stats = result.stats;
  stats.per_dependency.resize(dependencies.size());
  for (std::size_t d = 0; d < dependencies.size(); ++d) {
    stats.per_dependency[d].dep = d;
    stats.per_dependency[d].label =
        StrCat("d", d, " ", dependencies[d].ToString());
  }
  // Per-trigger timing costs two clock reads per trigger; only pay it when
  // someone is looking. Counts stay exact either way.
  const bool attributed = obs::AttributionEnabled() || obs::TracingEnabled();
  obs::Span run_span("chase");
  obs::ScopedTimer run_timer;
  uint64_t total_added = 0;
  std::vector<Fact> delta;  // facts added in the previous round

  for (uint64_t round = 0; round < options.max_rounds; ++round) {
    ChaseRoundStats round_stats;
    round_stats.round = round;
    round_stats.frontier = delta.size();
    obs::Span round_span("chase.round");
    round_span.Arg("round", round);
    obs::ScopedTimer round_timer;
    // Snapshot this round's triggers against a fixed index. The first
    // round enumerates everything; later rounds (semi-naive) only matches
    // anchored at a delta fact.
    FactIndex index(result.combined);
    std::vector<Trigger> triggers;
    const bool semi_naive = options.use_semi_naive && round > 0;
    if (!semi_naive) {
      // Full enumeration per dependency; CollectMatches fans the search
      // out over num_threads and returns matches in sequential order.
      MatchOptions match_options = options.match_options;
      match_options.num_threads = options.num_threads;
      for (const Dependency& dep : dependencies) {
        std::optional<obs::ScopedTimer> dep_timer;
        uint64_t dep_us = 0;
        if (attributed) dep_timer.emplace(nullptr, &dep_us);
        RDX_ASSIGN_OR_RETURN(
            std::vector<Assignment> matches,
            CollectMatches(dep.body(), result.combined, index,
                           match_options));
        dep_timer.reset();
        stats.per_dependency[&dep - dependencies.data()].micros += dep_us;
        for (Assignment& match : matches) {
          triggers.push_back(Trigger{&dep, std::move(match)});
        }
      }
    } else {
      // One task per (dependency, anchor atom, delta fact) in the order
      // the sequential loop nest visits them; run in parallel, then merge
      // in task order so the dedup below sees matches exactly as the
      // sequential enumeration would produce them.
      std::vector<EnumerationTask> tasks;
      for (const Dependency& dep : dependencies) {
        const std::vector<Atom> body = dep.RelationalBody();
        for (std::size_t ai = 0; ai < body.size(); ++ai) {
          for (const Fact& f : delta) {
            if (!(f.relation() == body[ai].relation())) continue;
            std::optional<Assignment> seed = AnchorSeed(body[ai], f);
            if (!seed.has_value()) continue;
            tasks.push_back(EnumerationTask{&dep, *std::move(seed)});
          }
        }
      }
      std::vector<EnumerationResult> enumerated = RunEnumerationTasks(
          tasks, result.combined, index, options.match_options,
          options.num_threads, attributed);
      std::set<std::vector<uint64_t>> seen;
      for (std::size_t t = 0; t < tasks.size(); ++t) {
        MergeMatchStats(enumerated[t].run, options.match_options.stats);
        stats.per_dependency[tasks[t].dep - dependencies.data()].micros +=
            enumerated[t].micros;
        RDX_RETURN_IF_ERROR(enumerated[t].status);
        for (Assignment& match : enumerated[t].matches) {
          if (seen.insert(TriggerKey(tasks[t].dep, match)).second) {
            triggers.push_back(Trigger{tasks[t].dep, std::move(match)});
          }
        }
      }
    }

    round_stats.triggers_enumerated = triggers.size();
    for (const Trigger& trigger : triggers) {
      ++stats.per_dependency[trigger.dep - dependencies.data()]
            .triggers_enumerated;
    }

    uint64_t added_this_round = 0;
    std::vector<Fact> next_delta;
    // The round's index doubles as the live index during firing: fact
    // storage is append-stable, so newly fired facts are folded in
    // incrementally (standard-chase semantics — earlier fires discharge
    // later triggers).
    std::size_t indexed_facts = result.combined.size();
    for (const Trigger& trigger : triggers) {
      ChaseDepStats& dep_stats =
          stats.per_dependency[trigger.dep - dependencies.data()];
      std::optional<obs::ScopedTimer> fire_timer;
      uint64_t fire_us = 0;
      if (attributed) fire_timer.emplace(nullptr, &fire_us);
      RDX_ASSIGN_OR_RETURN(
          bool satisfied,
          HeadSatisfied(result.combined, index, *trigger.dep, trigger.match,
                        options.match_options));
      if (satisfied) {
        fire_timer.reset();
        dep_stats.micros += fire_us;
        ++round_stats.triggers_satisfied;
        ++dep_stats.triggers_satisfied;
        continue;
      }
      ++round_stats.triggers_fired;
      ++dep_stats.triggers_fired;
      RDX_ASSIGN_OR_RETURN(
          uint64_t added,
          FireDisjunct(trigger.dep->disjuncts()[0], trigger.match,
                       &result.combined, &next_delta));
      for (std::size_t i = indexed_facts; i < result.combined.size(); ++i) {
        index.Add(&result.combined.facts()[i]);
      }
      indexed_facts = result.combined.size();
      fire_timer.reset();
      dep_stats.micros += fire_us;
      dep_stats.facts_added += added;
      added_this_round += added;
      total_added += added;
      if (total_added > options.max_new_facts) {
        stats.micros = run_timer.ElapsedMicros();
        PublishChaseStats(stats, /*completed=*/false);
        return Status::ResourceExhausted(StrCat(
            "chase exceeded max_new_facts=", options.max_new_facts, ": ",
            total_added, " facts added by round ", round, " (",
            round_stats.triggers_fired, " of ",
            round_stats.triggers_enumerated,
            " triggers fired in the current round; last fired: ",
            trigger.dep->Describe(), ")"));
      }
    }

    round_stats.facts_added = added_this_round;
    round_stats.micros = round_timer.ElapsedMicros();
    round_span.Arg("fired", round_stats.triggers_fired)
        .Arg("new_facts", round_stats.facts_added);
    stats.rounds = round + 1;
    stats.triggers_enumerated += round_stats.triggers_enumerated;
    stats.triggers_fired += round_stats.triggers_fired;
    stats.triggers_satisfied += round_stats.triggers_satisfied;
    stats.facts_added += round_stats.facts_added;
    stats.per_round.push_back(round_stats);
    if (obs::TracingEnabled()) {
      obs::EmitTrace(obs::TraceEvent("chase.round")
                         .Add("round", round_stats.round)
                         .Add("frontier", round_stats.frontier)
                         .Add("triggers", round_stats.triggers_enumerated)
                         .Add("fired", round_stats.triggers_fired)
                         .Add("satisfied", round_stats.triggers_satisfied)
                         .Add("new_facts", round_stats.facts_added)
                         .Add("us", round_stats.micros));
    }

    result.rounds = round + 1;
    if (added_this_round == 0) {
      // Fixpoint reached: compute the added-facts view and return.
      for (const Fact& f : result.combined.facts()) {
        if (!input.Contains(f)) result.added.AddFact(f);
      }
      stats.micros = run_timer.ElapsedMicros();
      run_span.Arg("rounds", stats.rounds)
          .Arg("new_facts", stats.facts_added);
      PublishChaseStats(stats, /*completed=*/true);
      return result;
    }
    delta = std::move(next_delta);
  }
  stats.micros = run_timer.ElapsedMicros();
  PublishChaseStats(stats, /*completed=*/false);
  return Status::ResourceExhausted(
      StrCat("chase did not terminate within max_rounds=", options.max_rounds,
             ": ", total_added, " facts added over ", stats.rounds,
             " rounds"));
}

Result<bool> Satisfies(const Instance& instance, const Dependency& dependency,
                       const MatchOptions& options) {
  FactIndex index(instance);
  bool all_satisfied = true;
  Status inner_error = Status::OK();
  Status status = EnumerateMatches(
      dependency.body(), instance, index,
      [&](const Assignment& match) {
        Result<bool> head =
            HeadSatisfied(instance, index, dependency, match, options);
        if (!head.ok()) {
          inner_error = head.status();
          all_satisfied = false;
          return false;
        }
        if (!*head) {
          all_satisfied = false;
          return false;
        }
        return true;
      },
      options);
  RDX_RETURN_IF_ERROR(status);
  RDX_RETURN_IF_ERROR(inner_error);
  return all_satisfied;
}

Result<bool> SatisfiesAll(const Instance& instance,
                          const std::vector<Dependency>& dependencies,
                          const MatchOptions& options) {
  for (const Dependency& dep : dependencies) {
    RDX_ASSIGN_OR_RETURN(bool sat, Satisfies(instance, dep, options));
    if (!sat) return false;
  }
  return true;
}

}  // namespace rdx
