#include "chase/chase.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <set>

#include "base/strings.h"
#include "core/fact_index.h"

namespace rdx {
namespace {

// True if some disjunct of `dep` is satisfiable in `instance` under an
// extension of `match` (existential variables free).
Result<bool> HeadSatisfied(const Instance& instance, const FactIndex& index,
                           const Dependency& dep, const Assignment& match,
                           const MatchOptions& options) {
  for (const auto& disjunct : dep.disjuncts()) {
    bool satisfied = false;
    Status status = EnumerateMatches(
        disjunct, instance, index,
        [&](const Assignment&) {
          satisfied = true;
          return false;  // one witness suffices
        },
        options, match);
    RDX_RETURN_IF_ERROR(status);
    if (satisfied) return true;
  }
  return false;
}

// Grounds `disjunct` under `match`, instantiating existential variables
// with globally fresh nulls, and adds the facts to `instance`. Newly added
// facts are appended to `added_facts`.
Result<uint64_t> FireDisjunct(const std::vector<Atom>& disjunct,
                              const Assignment& match, Instance* instance,
                              std::vector<Fact>* added_facts) {
  Assignment extended = match;
  for (const Atom& a : disjunct) {
    for (Variable v : a.Vars()) {
      if (extended.count(v) == 0) {
        extended.emplace(v, Value::FreshNull());
      }
    }
  }
  uint64_t added = 0;
  for (const Atom& a : disjunct) {
    RDX_ASSIGN_OR_RETURN(Fact f, a.Ground(extended));
    if (instance->AddFact(f)) {
      ++added;
      added_facts->push_back(std::move(f));
    }
  }
  return added;
}

struct Trigger {
  const Dependency* dep;
  Assignment match;
};

// Canonical key for trigger dedup under semi-naive enumeration (the same
// match can be discovered from several delta facts).
std::vector<uint64_t> TriggerKey(const Dependency* dep,
                                 const Assignment& match) {
  std::vector<uint64_t> key;
  key.reserve(match.size() * 2 + 1);
  key.push_back(reinterpret_cast<uintptr_t>(dep));
  std::vector<std::pair<uint32_t, uint64_t>> entries;
  entries.reserve(match.size());
  for (const auto& [var, value] : match) {
    entries.emplace_back(var.id(),
                         (static_cast<uint64_t>(value.kind()) << 32) |
                             value.id());
  }
  std::sort(entries.begin(), entries.end());
  for (const auto& [var_id, packed] : entries) {
    key.push_back(var_id);
    key.push_back(packed);
  }
  return key;
}

// Attempts to pre-bind `atom`'s variables so that it grounds to `fact`
// (the semi-naive anchor). Returns nullopt on mismatch.
std::optional<Assignment> AnchorSeed(const Atom& atom, const Fact& fact) {
  Assignment seed;
  const std::vector<Term>& terms = atom.terms();
  const std::vector<Value>& args = fact.args();
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (terms[i].IsConstant()) {
      if (!(terms[i].constant() == args[i])) return std::nullopt;
      continue;
    }
    auto it = seed.find(terms[i].variable());
    if (it != seed.end()) {
      if (!(it->second == args[i])) return std::nullopt;
    } else {
      seed.emplace(terms[i].variable(), args[i]);
    }
  }
  return seed;
}

}  // namespace

Result<ChaseResult> Chase(const Instance& input,
                          const std::vector<Dependency>& dependencies,
                          const ChaseOptions& options) {
  for (const Dependency& dep : dependencies) {
    if (dep.HasDisjunction()) {
      return Status::InvalidArgument(
          StrCat("Chase does not support disjunctive dependencies (use "
                 "DisjunctiveChase): ",
                 dep.ToString()));
    }
  }

  ChaseResult result;
  result.combined = input;
  uint64_t total_added = 0;
  std::vector<Fact> delta;  // facts added in the previous round

  for (uint64_t round = 0; round < options.max_rounds; ++round) {
    // Snapshot this round's triggers against a fixed index. The first
    // round enumerates everything; later rounds (semi-naive) only matches
    // anchored at a delta fact.
    FactIndex index(result.combined);
    std::vector<Trigger> triggers;
    const bool semi_naive = options.use_semi_naive && round > 0;
    if (!semi_naive) {
      for (const Dependency& dep : dependencies) {
        Status status = EnumerateMatches(
            dep.body(), result.combined, index,
            [&](const Assignment& match) {
              triggers.push_back(Trigger{&dep, match});
              return true;
            },
            options.match_options);
        RDX_RETURN_IF_ERROR(status);
      }
    } else {
      std::set<std::vector<uint64_t>> seen;
      for (const Dependency& dep : dependencies) {
        const std::vector<Atom> body = dep.RelationalBody();
        for (std::size_t ai = 0; ai < body.size(); ++ai) {
          for (const Fact& f : delta) {
            if (!(f.relation() == body[ai].relation())) continue;
            std::optional<Assignment> seed = AnchorSeed(body[ai], f);
            if (!seed.has_value()) continue;
            Status status = EnumerateMatches(
                dep.body(), result.combined, index,
                [&](const Assignment& match) {
                  if (seen.insert(TriggerKey(&dep, match)).second) {
                    triggers.push_back(Trigger{&dep, match});
                  }
                  return true;
                },
                options.match_options, *seed);
            RDX_RETURN_IF_ERROR(status);
          }
        }
      }
    }

    uint64_t added_this_round = 0;
    std::vector<Fact> next_delta;
    // The round's index doubles as the live index during firing: fact
    // storage is append-stable, so newly fired facts are folded in
    // incrementally (standard-chase semantics — earlier fires discharge
    // later triggers).
    std::size_t indexed_facts = result.combined.size();
    for (const Trigger& trigger : triggers) {
      RDX_ASSIGN_OR_RETURN(
          bool satisfied,
          HeadSatisfied(result.combined, index, *trigger.dep, trigger.match,
                        options.match_options));
      if (satisfied) continue;
      RDX_ASSIGN_OR_RETURN(
          uint64_t added,
          FireDisjunct(trigger.dep->disjuncts()[0], trigger.match,
                       &result.combined, &next_delta));
      for (std::size_t i = indexed_facts; i < result.combined.size(); ++i) {
        index.Add(&result.combined.facts()[i]);
      }
      indexed_facts = result.combined.size();
      added_this_round += added;
      total_added += added;
      if (total_added > options.max_new_facts) {
        return Status::ResourceExhausted(
            StrCat("chase exceeded max_new_facts=", options.max_new_facts));
      }
    }

    result.rounds = round + 1;
    if (added_this_round == 0) {
      // Fixpoint reached: compute the added-facts view and return.
      for (const Fact& f : result.combined.facts()) {
        if (!input.Contains(f)) result.added.AddFact(f);
      }
      return result;
    }
    delta = std::move(next_delta);
  }
  return Status::ResourceExhausted(
      StrCat("chase did not terminate within max_rounds=",
             options.max_rounds));
}

Result<bool> Satisfies(const Instance& instance, const Dependency& dependency,
                       const MatchOptions& options) {
  FactIndex index(instance);
  bool all_satisfied = true;
  Status inner_error = Status::OK();
  Status status = EnumerateMatches(
      dependency.body(), instance, index,
      [&](const Assignment& match) {
        Result<bool> head =
            HeadSatisfied(instance, index, dependency, match, options);
        if (!head.ok()) {
          inner_error = head.status();
          all_satisfied = false;
          return false;
        }
        if (!*head) {
          all_satisfied = false;
          return false;
        }
        return true;
      },
      options);
  RDX_RETURN_IF_ERROR(status);
  RDX_RETURN_IF_ERROR(inner_error);
  return all_satisfied;
}

Result<bool> SatisfiesAll(const Instance& instance,
                          const std::vector<Dependency>& dependencies,
                          const MatchOptions& options) {
  for (const Dependency& dep : dependencies) {
    RDX_ASSIGN_OR_RETURN(bool sat, Satisfies(instance, dep, options));
    if (!sat) return false;
  }
  return true;
}

}  // namespace rdx
