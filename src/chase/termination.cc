#include "chase/termination.h"

#include <algorithm>
#include <map>
#include <set>

#include "base/strings.h"

namespace rdx {
namespace {

// A position node (relation, argument index).
struct Position {
  uint32_t relation;
  uint32_t index;
  auto operator<=>(const Position&) const = default;
};

struct Edge {
  Position from;
  Position to;
  bool special;
};

// Renders a position as "RelName.i" (1-based, as in the literature).
std::string PrettyPosition(const Position& p,
                           const std::map<uint32_t, std::string>& names) {
  auto it = names.find(p.relation);
  return StrCat(it == names.end() ? StrCat("#", p.relation) : it->second,
                ".", p.index + 1);
}

}  // namespace

Result<WeakAcyclicityReport> CheckWeakAcyclicity(
    const std::vector<Dependency>& dependencies, WeakAcyclicityMode mode) {
  std::vector<Edge> edges;
  std::set<Position> nodes;
  std::map<uint32_t, std::string> relation_names;

  for (const Dependency& dep : dependencies) {
    // Universal variable occurrences in relational body atoms.
    std::map<uint32_t, std::vector<Position>> body_positions;  // by var id
    for (const Atom& a : dep.RelationalBody()) {
      relation_names[a.relation().id()] = a.relation().name();
      for (std::size_t i = 0; i < a.terms().size(); ++i) {
        const Term& t = a.terms()[i];
        Position p{a.relation().id(), static_cast<uint32_t>(i)};
        nodes.insert(p);
        if (t.IsVariable()) {
          body_positions[t.variable().id()].push_back(p);
        }
      }
    }
    for (std::size_t d = 0; d < dep.disjuncts().size(); ++d) {
      const std::vector<Atom>& head = dep.disjuncts()[d];
      // Head occurrences split into universal and existential positions.
      std::map<uint32_t, std::vector<Position>> universal_head;
      std::vector<Position> existential_positions;
      for (const Atom& a : head) {
        relation_names[a.relation().id()] = a.relation().name();
        for (std::size_t i = 0; i < a.terms().size(); ++i) {
          const Term& t = a.terms()[i];
          Position p{a.relation().id(), static_cast<uint32_t>(i)};
          nodes.insert(p);
          if (!t.IsVariable()) continue;
          if (body_positions.count(t.variable().id()) > 0) {
            universal_head[t.variable().id()].push_back(p);
          } else {
            existential_positions.push_back(p);
          }
        }
      }
      for (const auto& [var_id, head_ps] : universal_head) {
        for (const Position& from : body_positions[var_id]) {
          for (const Position& to : head_ps) {
            edges.push_back(Edge{from, to, /*special=*/false});
          }
        }
      }
      // Special edges. FKMP05 Def. 3.9 draws them only from universal
      // variables occurring in THIS head: a standard chase fires no step
      // for an already-satisfied trigger, so a head-absent universal
      // never forces fresh values. kObliviousChase keeps the stricter
      // every-body-universal graph for engines that fire all triggers
      // unconditionally (see termination.h).
      if (!existential_positions.empty()) {
        for (const auto& [var_id, body_ps] : body_positions) {
          if (mode == WeakAcyclicityMode::kStandardChase &&
              universal_head.count(var_id) == 0) {
            continue;
          }
          for (const Position& from : body_ps) {
            for (const Position& to : existential_positions) {
              edges.push_back(Edge{from, to, /*special=*/true});
            }
          }
        }
      }
    }
  }

  // Weakly acyclic iff no special edge lies on a cycle, i.e. for no
  // special edge (u ⇒ v) is u reachable from v.
  std::map<Position, std::vector<Position>> adjacency;
  for (const Edge& e : edges) {
    adjacency[e.from].push_back(e.to);
  }
  auto reachable = [&](const Position& from, const Position& target) {
    std::set<Position> seen;
    std::vector<Position> stack = {from};
    while (!stack.empty()) {
      Position p = stack.back();
      stack.pop_back();
      if (p == target) return true;
      if (!seen.insert(p).second) continue;
      auto it = adjacency.find(p);
      if (it == adjacency.end()) continue;
      for (const Position& q : it->second) {
        stack.push_back(q);
      }
    }
    return false;
  };

  WeakAcyclicityReport report;
  for (const Edge& e : edges) {
    if (!e.special) continue;
    if (reachable(e.to, e.from)) {
      report.weakly_acyclic = false;
      report.cycle_witness =
          StrCat(PrettyPosition(e.from, relation_names), " => ",
                 PrettyPosition(e.to, relation_names),
                 " ->* ", PrettyPosition(e.from, relation_names));
      return report;
    }
  }
  report.weakly_acyclic = true;
  return report;
}

}  // namespace rdx
