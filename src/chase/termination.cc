#include "chase/termination.h"

#include "analysis/position_graph.h"

namespace rdx {

Result<WeakAcyclicityReport> CheckWeakAcyclicity(
    const std::vector<Dependency>& dependencies, WeakAcyclicityMode mode) {
  PositionGraph graph = PositionGraph::Build(dependencies, mode);
  WeakAcyclicityReport report;
  report.weakly_acyclic = graph.weakly_acyclic();
  report.cycle_witness = graph.cycle_witness();
  return report;
}

}  // namespace rdx
