#ifndef RDX_CORE_ATOM_H_
#define RDX_CORE_ATOM_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "core/fact.h"
#include "core/schema.h"
#include "core/term.h"

namespace rdx {

/// An atom in a dependency or query body/head. Three kinds:
///  * relational:  R(t1, ..., tk)
///  * inequality:  t1 != t2                 (Section 2: "inequalities")
///  * is-constant: Constant(t)              (Section 2: the Constant predicate)
/// Inequality and Constant atoms may appear only in bodies.
class Atom {
 public:
  enum class Kind { kRelational, kInequality, kIsConstant };

  /// Builds a relational atom, validating the arity.
  static Result<Atom> Relational(Relation relation, std::vector<Term> terms);

  /// Like Relational but aborts on arity mismatch; for literals in tests.
  static Atom MustRelational(Relation relation, std::vector<Term> terms);

  static Atom Inequality(Term lhs, Term rhs);
  static Atom IsConstant(Term term);

  Kind kind() const { return kind_; }
  bool IsRelational() const { return kind_ == Kind::kRelational; }

  /// Only valid for relational atoms.
  Relation relation() const { return relation_; }

  /// The terms: k terms for relational atoms, 2 for inequalities, 1 for
  /// Constant atoms.
  const std::vector<Term>& terms() const { return terms_; }

  /// The distinct variables occurring in this atom, in first-occurrence
  /// order.
  std::vector<Variable> Vars() const;

  /// Evaluates under a (total, for this atom's variables) assignment.
  /// Relational atoms ground to a Fact; fails if a variable is unbound.
  Result<Fact> Ground(const Assignment& assignment) const;

  /// Evaluates a builtin atom (inequality / Constant) under `assignment`.
  /// Inequality holds if the two values differ (labeled nulls are compared
  /// syntactically); Constant(t) holds if the value is a constant.
  /// Fails on relational atoms or unbound variables.
  Result<bool> EvalBuiltin(const Assignment& assignment) const;

  std::string ToString() const;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.kind_ == b.kind_ && a.relation_ == b.relation_ &&
           a.terms_ == b.terms_;
  }

 private:
  Atom(Kind kind, Relation relation, std::vector<Term> terms)
      : kind_(kind), relation_(relation), terms_(std::move(terms)) {}

  Kind kind_;
  Relation relation_;  // meaningful only for kRelational
  std::vector<Term> terms_;
};

/// Renders a conjunction of atoms as "A1 & A2 & ...".
std::string AtomsToString(const std::vector<Atom>& atoms);

/// The distinct variables occurring in `atoms`, in first-occurrence order.
std::vector<Variable> VarsOf(const std::vector<Atom>& atoms);

}  // namespace rdx

#endif  // RDX_CORE_ATOM_H_
