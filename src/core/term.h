#ifndef RDX_CORE_TERM_H_
#define RDX_CORE_TERM_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/value.h"

namespace rdx {

/// An interned first-order variable, as used in dependencies and queries.
/// Variables are process-wide: the same name always denotes the same
/// variable.
class Variable {
 public:
  Variable() : id_(0) {}

  /// Interns (or retrieves) the variable named `name`.
  static Variable Intern(std::string_view name);

  /// Returns a globally fresh variable (label "v<id>").
  static Variable Fresh();

  uint32_t id() const { return id_; }
  std::string name() const;

  friend bool operator==(const Variable& a, const Variable& b) {
    return a.id_ == b.id_;
  }
  friend auto operator<=>(const Variable& a, const Variable& b) {
    return a.id_ <=> b.id_;
  }

 private:
  explicit Variable(uint32_t id) : id_(id) {}
  uint32_t id_;
};

struct VariableHash {
  std::size_t operator()(const Variable& v) const {
    return std::hash<uint32_t>()(v.id());
  }
};

/// An assignment of variables to instance values, produced by dependency
/// matching and query evaluation.
using Assignment = std::unordered_map<Variable, Value, VariableHash>;

/// A term in a dependency or query: either a variable or a constant value.
class Term {
 public:
  enum class Kind : uint32_t { kVariable = 0, kConstant = 1 };

  Term() : kind_(Kind::kVariable), variable_(), constant_() {}

  static Term Var(Variable v) {
    Term t;
    t.kind_ = Kind::kVariable;
    t.variable_ = v;
    return t;
  }
  static Term Var(std::string_view name) { return Var(Variable::Intern(name)); }
  static Term Const(Value value) {
    Term t;
    t.kind_ = Kind::kConstant;
    t.constant_ = value;
    return t;
  }

  Kind kind() const { return kind_; }
  bool IsVariable() const { return kind_ == Kind::kVariable; }
  bool IsConstant() const { return kind_ == Kind::kConstant; }

  Variable variable() const { return variable_; }
  Value constant() const { return constant_; }

  /// The value of this term under `assignment`; for an unbound variable
  /// returns false via the out-parameter contract: see Eval in atom.h.
  /// Convenience here: constant terms evaluate to their value.
  std::string ToString() const;

  friend bool operator==(const Term& a, const Term& b) {
    if (a.kind_ != b.kind_) return false;
    return a.kind_ == Kind::kVariable ? a.variable_ == b.variable_
                                      : a.constant_ == b.constant_;
  }

  std::size_t Hash() const {
    std::size_t seed = static_cast<std::size_t>(kind_);
    HashCombine(seed, kind_ == Kind::kVariable ? variable_.id()
                                               : constant_.Hash());
    return seed;
  }

 private:
  Kind kind_;
  Variable variable_;
  Value constant_;
};

struct TermHash {
  std::size_t operator()(const Term& t) const { return t.Hash(); }
};

}  // namespace rdx

#endif  // RDX_CORE_TERM_H_
