#include "core/instance_parser.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "base/strings.h"

namespace rdx {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Instance> Parse() {
    Instance instance;
    SkipSeparators();
    while (!AtEnd()) {
      RDX_ASSIGN_OR_RETURN(Fact fact, ParseFact());
      instance.AddFact(fact);
      SkipSeparators();
    }
    return instance;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipSeparators() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c)) || c == '.' ||
          c == ',') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  Result<std::string> ParseIdentifier() {
    SkipSpace();
    std::size_t start = pos_;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      return Status::InvalidArgument(
          StrCat("expected identifier at offset ", start, " in instance text"));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<Value> ParseTerm() {
    SkipSpace();
    if (!AtEnd() && Peek() == '?') {
      ++pos_;
      RDX_ASSIGN_OR_RETURN(std::string label, ParseIdentifier());
      return Value::MakeNull(label);
    }
    RDX_ASSIGN_OR_RETURN(std::string name, ParseIdentifier());
    return Value::MakeConstant(name);
  }

  Status Expect(char c) {
    SkipSpace();
    if (AtEnd() || Peek() != c) {
      return Status::InvalidArgument(
          StrCat("expected '", c, "' at offset ", pos_, " in instance text"));
    }
    ++pos_;
    return Status::OK();
  }

  Result<Fact> ParseFact() {
    RDX_ASSIGN_OR_RETURN(std::string rel_name, ParseIdentifier());
    RDX_RETURN_IF_ERROR(Expect('('));
    std::vector<Value> args;
    while (true) {
      RDX_ASSIGN_OR_RETURN(Value v, ParseTerm());
      args.push_back(v);
      SkipSpace();
      if (!AtEnd() && Peek() == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    RDX_RETURN_IF_ERROR(Expect(')'));
    RDX_ASSIGN_OR_RETURN(
        Relation rel,
        Relation::Intern(rel_name, static_cast<uint32_t>(args.size())));
    return Fact::Make(rel, std::move(args));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Instance> ParseInstance(std::string_view text) {
  return Parser(text).Parse();
}

Instance MustParseInstance(std::string_view text) {
  Result<Instance> r = ParseInstance(text);
  if (!r.ok()) {
    std::fprintf(stderr, "MustParseInstance(\"%.*s\"): %s\n",
                 static_cast<int>(text.size()), text.data(),
                 r.status().ToString().c_str());
    std::abort();
  }
  return *std::move(r);
}

}  // namespace rdx
