#ifndef RDX_CORE_MATCH_H_
#define RDX_CORE_MATCH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "base/status.h"
#include "core/atom.h"
#include "core/fact_index.h"
#include "core/instance.h"

namespace rdx {

/// Observability stats for match enumeration. Accumulated (+=) across
/// calls so one struct can aggregate a whole phase; totals are also
/// mirrored into the process-wide "match.*" counters.
struct MatchStats {
  uint64_t enumerations = 0;  // EnumerateMatches calls
  uint64_t steps = 0;         // backtracking nodes expanded
  uint64_t candidates = 0;    // (atom, fact) binding attempts
  uint64_t matches = 0;       // complete assignments delivered
};

struct MatchOptions {
  /// Backtracking-node budget; exceeded => ResourceExhausted. Under
  /// parallel collection (CollectMatches with num_threads > 1) the budget
  /// applies per partition, not to the whole search.
  uint64_t max_steps = 50'000'000;

  /// Threads used by CollectMatches (EnumerateMatches itself is always
  /// single-threaded; its callback contract is sequential). 1 = the plain
  /// sequential code path, no thread-pool involvement. See
  /// docs/parallelism.md.
  uint64_t num_threads = 1;

  /// Optional per-run stats accumulator (not owned; may be null). The
  /// pointed-to struct is incremented, never reset, by each enumeration
  /// run with these options.
  MatchStats* stats = nullptr;
};

/// Called once per complete match. Return false to stop the enumeration.
using MatchCallback = std::function<bool(const Assignment&)>;

/// Enumerates every assignment of the variables of `atoms` such that each
/// relational atom grounds to a fact of `instance` and every builtin atom
/// (inequality / Constant) holds. Built-in atoms are checked as soon as all
/// of their variables are bound, pruning the search.
///
/// `seed` pre-binds some variables (used by the chase to check whether a
/// dependency head is satisfied under a body match); every enumerated
/// assignment extends it. Variables in the seed that do not occur in
/// `atoms` are passed through unchanged.
///
/// This is the evaluation engine behind dependency satisfaction, the chase
/// trigger search, and conjunctive query answering.
Status EnumerateMatches(const std::vector<Atom>& atoms,
                        const Instance& instance, const MatchCallback& callback,
                        const MatchOptions& options = {},
                        const Assignment& seed = {});

/// As above but with a caller-provided index over `instance` (the index
/// must have been built from exactly this instance).
Status EnumerateMatches(const std::vector<Atom>& atoms,
                        const Instance& instance, const FactIndex& index,
                        const MatchCallback& callback,
                        const MatchOptions& options = {},
                        const Assignment& seed = {});

/// Enumerates like EnumerateMatches but returns the complete assignments
/// as a vector, fanning the search out over options.num_threads threads
/// (rdx::par). The parallel decomposition partitions the search by the
/// candidate facts of the root atom the sequential search would branch on
/// first, so the returned order, the match multiset, and the aggregated
/// enumerations/candidates/matches stats are all independent of the
/// thread count and identical to the sequential path (steps can differ:
/// each partition is a separate sub-search with its own budget). The
/// chase's trigger-enumeration phase is built on this; see
/// docs/parallelism.md for the determinism argument.
Result<std::vector<Assignment>> CollectMatches(
    const std::vector<Atom>& atoms, const Instance& instance,
    const FactIndex& index, const MatchOptions& options = {},
    const Assignment& seed = {});

}  // namespace rdx

#endif  // RDX_CORE_MATCH_H_
