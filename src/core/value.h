#ifndef RDX_CORE_VALUE_H_
#define RDX_CORE_VALUE_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "base/hash.h"

namespace rdx {

/// A value appearing in an instance: either a constant from Const or a
/// labeled null from Var (the paper's Const ∪ Var, Section 2).
///
/// Values are small (8 bytes) and cheap to copy/compare. Constant names and
/// null labels are interned in a process-wide table; two constants with the
/// same name are the same value, and likewise for named nulls. Fresh nulls
/// (as invented by the chase) have globally unique ids and synthesized
/// labels "N<id>".
class Value {
 public:
  enum class Kind : uint32_t { kConstant = 0, kNull = 1 };

  /// Default-constructed value is the constant "" (rarely meaningful;
  /// provided so Value is usable in containers).
  Value() : kind_(Kind::kConstant), id_(0) {}

  /// Returns the interned constant named `name`.
  static Value MakeConstant(std::string_view name);

  /// Returns the interned constant for the decimal rendering of `v`.
  static Value MakeInt(int64_t v);

  /// Returns the interned labeled null with label `name`. The same label
  /// always yields the same null.
  static Value MakeNull(std::string_view name);

  /// Returns a globally fresh null, distinct from every null returned
  /// before (by this function or by MakeNull).
  static Value FreshNull();

  Kind kind() const { return kind_; }
  bool IsConstant() const { return kind_ == Kind::kConstant; }
  bool IsNull() const { return kind_ == Kind::kNull; }
  uint32_t id() const { return id_; }

  /// The constant's name, or the null's label (without the '?' sigil).
  std::string name() const;

  /// Render for display/parsing round trips: constants print as their name,
  /// nulls print as "?<label>".
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.kind_ == b.kind_ && a.id_ == b.id_;
  }
  friend std::strong_ordering operator<=>(const Value& a, const Value& b) {
    if (a.kind_ != b.kind_) return a.kind_ <=> b.kind_;
    return a.id_ <=> b.id_;
  }

  std::size_t Hash() const {
    std::size_t seed = static_cast<std::size_t>(kind_);
    HashCombine(seed, id_);
    return seed;
  }

  /// Dense packed id over the combined constant/null id spaces: bit 0 is
  /// the kind (0 = constant, 1 = null), bits 1..31 the interning id. The
  /// packing is bijective (both interners hand out dense ids from 0), so
  /// packed ids are directly usable as columnar cell values and hash keys
  /// without touching the interning tables. Requires id() < 2^31; the
  /// interners allocate sequentially, so this only breaks past two billion
  /// distinct names of one kind.
  uint32_t PackedId() const {
    return (id_ << 1) | static_cast<uint32_t>(kind_);
  }

  /// Inverse of PackedId(). The packed id must have been produced by
  /// PackedId() (i.e. refer to an interned value of this process).
  static Value FromPackedId(uint32_t packed) {
    return Value(static_cast<Kind>(packed & 1u), packed >> 1);
  }

  /// Reserved sentinel, never returned by PackedId() until the interners
  /// overflow 2^31 names. Used as "unbound" by the columnar search layers.
  static constexpr uint32_t kInvalidPackedId = 0xFFFFFFFFu;

 private:
  Value(Kind kind, uint32_t id) : kind_(kind), id_(id) {}

  Kind kind_;
  uint32_t id_;
};

struct ValueHash {
  std::size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace rdx

template <>
struct std::hash<rdx::Value> {
  std::size_t operator()(const rdx::Value& v) const { return v.Hash(); }
};

#endif  // RDX_CORE_VALUE_H_
