#ifndef RDX_CORE_VALUE_H_
#define RDX_CORE_VALUE_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "base/hash.h"

namespace rdx {

/// A value appearing in an instance: either a constant from Const or a
/// labeled null from Var (the paper's Const ∪ Var, Section 2).
///
/// Values are small (8 bytes) and cheap to copy/compare. Constant names and
/// null labels are interned in a process-wide table; two constants with the
/// same name are the same value, and likewise for named nulls. Fresh nulls
/// (as invented by the chase) have globally unique ids and synthesized
/// labels "N<id>".
class Value {
 public:
  enum class Kind : uint32_t { kConstant = 0, kNull = 1 };

  /// Default-constructed value is the constant "" (rarely meaningful;
  /// provided so Value is usable in containers).
  Value() : kind_(Kind::kConstant), id_(0) {}

  /// Returns the interned constant named `name`.
  static Value MakeConstant(std::string_view name);

  /// Returns the interned constant for the decimal rendering of `v`.
  static Value MakeInt(int64_t v);

  /// Returns the interned labeled null with label `name`. The same label
  /// always yields the same null.
  static Value MakeNull(std::string_view name);

  /// Returns a globally fresh null, distinct from every null returned
  /// before (by this function or by MakeNull).
  static Value FreshNull();

  Kind kind() const { return kind_; }
  bool IsConstant() const { return kind_ == Kind::kConstant; }
  bool IsNull() const { return kind_ == Kind::kNull; }
  uint32_t id() const { return id_; }

  /// The constant's name, or the null's label (without the '?' sigil).
  std::string name() const;

  /// Render for display/parsing round trips: constants print as their name,
  /// nulls print as "?<label>".
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.kind_ == b.kind_ && a.id_ == b.id_;
  }
  friend std::strong_ordering operator<=>(const Value& a, const Value& b) {
    if (a.kind_ != b.kind_) return a.kind_ <=> b.kind_;
    return a.id_ <=> b.id_;
  }

  std::size_t Hash() const {
    std::size_t seed = static_cast<std::size_t>(kind_);
    HashCombine(seed, id_);
    return seed;
  }

 private:
  Value(Kind kind, uint32_t id) : kind_(kind), id_(id) {}

  Kind kind_;
  uint32_t id_;
};

struct ValueHash {
  std::size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace rdx

template <>
struct std::hash<rdx::Value> {
  std::size_t operator()(const rdx::Value& v) const { return v.Hash(); }
};

#endif  // RDX_CORE_VALUE_H_
