#ifndef RDX_CORE_CORE_COMPUTATION_H_
#define RDX_CORE_CORE_COMPUTATION_H_

#include <cstdint>

#include "base/status.h"
#include "core/homomorphism.h"
#include "core/instance.h"

namespace rdx {

/// Observability stats for core computation. Accumulated (+=) per run;
/// totals are also mirrored into the process-wide "core.*" counters, and
/// a "core.done" trace event is emitted per ComputeCore when tracing. The
/// homomorphism searches performed inside are themselves counted under
/// "hom.*".
struct CoreStats {
  uint64_t iterations = 0;           // fold-until-fixpoint rounds
  uint64_t retraction_attempts = 0;  // candidate facts tried for dropping
  uint64_t successful_folds = 0;     // retraction rounds that shrank
  uint64_t blocks = 0;               // null-blocks in the decomposition
  uint64_t masked_attempts = 0;      // attempts run via the masked search
  uint64_t memo_hits = 0;            // attempts skipped: block unchanged
                                     // since the same attempt failed
  uint64_t micros = 0;
};

/// Tuning knobs for ComputeCore / IsCore. The homomorphism options carry
/// the search budget, the per-run stats accumulator, and num_threads for
/// the parallel fan-out (across blocks, and across the candidate scan
/// within a block).
struct CoreOptions {
  HomomorphismOptions hom;

  /// Use the block-decomposed engine (docs/core.md): split the instance
  /// into ground facts + null-blocks, retract blockwise with a copy-free
  /// exclusion mask, and memoize failed attempts per unchanged block.
  /// false selects the legacy whole-instance retraction loop, which deep
  /// copies the instance (and rebuilds its index) per attempt — kept as
  /// the reference implementation and for the E12 ablation benchmarks.
  bool use_blocks = true;

  /// Cache failed retraction attempts keyed by (block residue, fact) and
  /// skip them while the block's residue is unchanged. Sound because the
  /// search target only ever shrinks: a failed attempt can only become
  /// satisfiable if its own block changed. Blocked engine only.
  bool memoize = true;
};

/// Computes the core of `instance`: the (unique up to isomorphism) smallest
/// subinstance homomorphically equivalent to it. The core is the canonical
/// representative of a homomorphic-equivalence class, which the paper uses
/// pervasively ("recover the source up to homomorphic equivalence").
///
/// Algorithm: repeatedly search for a homomorphism from the instance into a
/// proper subinstance (dropping one non-ground fact at a time); replace the
/// instance by the image until no such homomorphism exists. Worst-case
/// exponential (core identification is co-NP-hard), but the default
/// block-decomposed engine exploits that chase-style instances split into
/// many small null-blocks, shrinking each search from |instance| source
/// facts to one block (see docs/core.md for the algorithm and its
/// complexity).
Result<Instance> ComputeCore(const Instance& instance,
                             const CoreOptions& options,
                             CoreStats* stats = nullptr);

/// Convenience overload: default engine knobs, homomorphism options only.
Result<Instance> ComputeCore(const Instance& instance,
                             const HomomorphismOptions& options = {},
                             CoreStats* stats = nullptr);

/// True if `instance` equals its own core (no proper retraction exists).
Result<bool> IsCore(const Instance& instance, const CoreOptions& options,
                    CoreStats* stats = nullptr);

Result<bool> IsCore(const Instance& instance,
                    const HomomorphismOptions& options = {},
                    CoreStats* stats = nullptr);

}  // namespace rdx

#endif  // RDX_CORE_CORE_COMPUTATION_H_
