#ifndef RDX_CORE_CORE_COMPUTATION_H_
#define RDX_CORE_CORE_COMPUTATION_H_

#include <cstdint>

#include "base/status.h"
#include "core/homomorphism.h"
#include "core/instance.h"

namespace rdx {

/// Observability stats for core computation. Accumulated (+=) per run;
/// totals are also mirrored into the process-wide "core.*" counters, and
/// a "core.done" trace event is emitted per ComputeCore when tracing. The
/// homomorphism searches performed inside are themselves counted under
/// "hom.*".
struct CoreStats {
  uint64_t iterations = 0;           // fold-until-fixpoint rounds
  uint64_t retraction_attempts = 0;  // candidate facts tried for dropping
  uint64_t successful_folds = 0;     // retraction rounds that shrank
  uint64_t micros = 0;
};

/// Computes the core of `instance`: the (unique up to isomorphism) smallest
/// subinstance homomorphically equivalent to it. The core is the canonical
/// representative of a homomorphic-equivalence class, which the paper uses
/// pervasively ("recover the source up to homomorphic equivalence").
///
/// Algorithm: repeatedly search for a homomorphism from the instance into a
/// proper subinstance (dropping one non-ground fact at a time); replace the
/// instance by the image until no such homomorphism exists. Worst-case
/// exponential (core identification is co-NP-hard) but fast on the chase
/// outputs this library produces.
Result<Instance> ComputeCore(const Instance& instance,
                             const HomomorphismOptions& options = {},
                             CoreStats* stats = nullptr);

/// True if `instance` equals its own core (no proper retraction exists).
Result<bool> IsCore(const Instance& instance,
                    const HomomorphismOptions& options = {},
                    CoreStats* stats = nullptr);

}  // namespace rdx

#endif  // RDX_CORE_CORE_COMPUTATION_H_
