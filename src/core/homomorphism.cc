#include "core/homomorphism.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "base/metrics.h"
#include "base/spans.h"
#include "base/strings.h"
#include "base/trace.h"
#include "core/fact_index.h"

namespace rdx {
namespace {

// Batched publish of one search run's totals to the "hom.*" counters plus
// the caller's accumulator (if any) and, when tracing, a "hom.search"
// event.
void PublishHomStats(const HomomorphismStats& run,
                     HomomorphismStats* accumulator, uint64_t from_facts) {
  static obs::Counter& searches = obs::Counter::Get("hom.searches");
  static obs::Counter& steps = obs::Counter::Get("hom.steps");
  static obs::Counter& pairs = obs::Counter::Get("hom.candidate_pairs");
  static obs::Counter& backtracks = obs::Counter::Get("hom.backtracks");
  static obs::Counter& prunes = obs::Counter::Get("hom.domain_filter_prunes");
  static obs::Counter& found = obs::Counter::Get("hom.found");
  static obs::Counter& us = obs::Counter::Get("hom.us");
  searches.Increment();
  steps.Add(run.steps);
  pairs.Add(run.candidate_pairs);
  backtracks.Add(run.backtracks);
  prunes.Add(run.domain_filter_prunes);
  found.Add(run.found);
  us.Add(run.micros);
  if (accumulator != nullptr) {
    accumulator->searches += 1;
    accumulator->steps += run.steps;
    accumulator->candidate_pairs += run.candidate_pairs;
    accumulator->backtracks += run.backtracks;
    accumulator->domain_filter_prunes += run.domain_filter_prunes;
    accumulator->found += run.found;
    accumulator->micros += run.micros;
  }
  if (obs::TracingEnabled()) {
    obs::EmitTrace(obs::TraceEvent("hom.search")
                       .Add("from_facts", from_facts)
                       .Add("steps", run.steps)
                       .Add("pairs", run.candidate_pairs)
                       .Add("backtracks", run.backtracks)
                       .Add("pruned", run.domain_filter_prunes != 0)
                       .Add("found", run.found != 0)
                       .Add("us", run.micros));
  }
}

// The backtracking search, lowered onto the columnar index: source facts
// are compiled once into packed-id rows (constants inline, nulls as dense
// slot numbers), the binding is a flat uint32 vector indexed by slot, and
// candidate filtering walks the index's per-position posting lists of row
// numbers. Enumeration order and the steps/candidate_pairs/backtracks
// counters are identical to the original pointer-based search: rows are
// in insertion order exactly like the old per-(relation,position,value)
// fact lists, and the most-constrained-first choice compares the same
// list sizes.
class HomSearch {
 public:
  HomSearch(std::vector<const Fact*> source_facts, const FactIndex& index,
            const HomomorphismOptions& options,
            const FactMask* mask = nullptr,
            uint32_t excluded = kNoFactOrdinal)
      : index_(index),
        mask_(mask),
        excluded_(excluded),
        options_(options),
        source_facts_(std::move(source_facts)) {}

  Result<std::optional<ValueMap>> Run(const ValueMap& seed) {
    Prepare(seed);
    if (options_.injective) {
      // Constants of the source are their own (reserved) images; seed
      // bindings occupy their targets too.
      for (const Fact* f : source_facts_) {
        for (const Value& v : f->args()) {
          if (v.IsConstant()) used_targets_.insert(v.PackedId());
        }
      }
      for (const auto& [from, to] : seed) {
        if (from.IsNull()) {
          if (!used_targets_.insert(to.PackedId()).second) {
            return std::optional<ValueMap>();  // seed already non-injective
          }
        }
      }
    }
    matched_.assign(source_facts_.size(), false);
    bind_stack_.resize(source_facts_.size());
    steps_ = 0;
    bool found = Search(source_facts_.size());
    if (budget_exceeded_) {
      return Status::ResourceExhausted(
          StrCat("homomorphism search exceeded ", options_.max_steps,
                 " steps"));
    }
    if (!found) return std::optional<ValueMap>();
    ValueMap out = seed;
    for (std::size_t s = 0; s < binding_.size(); ++s) {
      if (binding_[s] != Value::kInvalidPackedId) {
        out.insert_or_assign(slot_values_[s], Value::FromPackedId(binding_[s]));
      }
    }
    return std::optional<ValueMap>(out);
  }

 private:
  // One source fact, lowered: terms_[begin + pos] is the constant's packed
  // id when is_null_[begin + pos] == 0, else the null's slot number. The
  // per-position data lives in shared arenas so preparing n facts costs two
  // allocations, not 2n — negative searches that die in the first selection
  // pass are dominated by this setup.
  struct PreparedFact {
    const FactIndex::RelStore* store = nullptr;  // null: relation unindexed
    uint32_t begin = 0;
    uint32_t arity = 0;
  };

  void Prepare(const ValueMap& seed) {
    std::unordered_map<uint32_t, uint32_t> slot_of;  // packed null -> slot
    std::size_t total_arity = 0;
    for (const Fact* f : source_facts_) total_arity += f->args().size();
    terms_.reserve(total_arity);
    is_null_.reserve(total_arity);
    prepared_.resize(source_facts_.size());
    for (std::size_t i = 0; i < source_facts_.size(); ++i) {
      const Fact& f = *source_facts_[i];
      PreparedFact& p = prepared_[i];
      p.store = index_.StoreOf(f.relation());
      p.begin = static_cast<uint32_t>(terms_.size());
      p.arity = static_cast<uint32_t>(f.args().size());
      for (const Value& v : f.args()) {
        if (v.IsConstant()) {
          terms_.push_back(v.PackedId());
          is_null_.push_back(0);
        } else {
          auto [it, inserted] = slot_of.emplace(
              v.PackedId(), static_cast<uint32_t>(slot_values_.size()));
          if (inserted) slot_values_.push_back(v);
          terms_.push_back(it->second);
          is_null_.push_back(1);
        }
      }
    }
    binding_.assign(slot_values_.size(), Value::kInvalidPackedId);
    for (const auto& [from, to] : seed) {
      if (!from.IsNull()) continue;
      auto it = slot_of.find(from.PackedId());
      if (it != slot_of.end()) binding_[it->second] = to.PackedId();
    }
  }

  // Number of target candidates compatible with the current binding for
  // prepared source fact `p`, or a cheap upper bound (masked-out facts are
  // still counted, so masking only weakens the bound, never unsoundly
  // prunes). Used for the most-constrained-fact-first heuristic.
  std::size_t CandidateBound(const PreparedFact& p) const {
    if (p.store == nullptr) return 0;
    std::size_t best = p.store->rows();
    for (std::size_t pos = 0; pos < p.arity; ++pos) {
      uint32_t vid = terms_[p.begin + pos];
      if (is_null_[p.begin + pos]) {
        vid = binding_[vid];
        if (vid == Value::kInvalidPackedId) continue;
      }
      const std::vector<uint32_t>* rows = p.store->RowsWith(pos, vid);
      best = std::min(best, rows == nullptr ? std::size_t{0} : rows->size());
    }
    return best;
  }

  bool Search(std::size_t remaining) {
    if (remaining == 0) return true;
    if (++steps_ > options_.max_steps) {
      budget_exceeded_ = true;
      return false;
    }

    // Pick the unmatched source fact with the fewest candidates.
    std::size_t best_idx = prepared_.size();
    std::size_t best_bound = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < prepared_.size(); ++i) {
      if (matched_[i]) continue;
      std::size_t bound = CandidateBound(prepared_[i]);
      if (bound < best_bound) {
        best_bound = bound;
        best_idx = i;
        if (bound == 0) break;
      }
    }
    if (best_bound == 0) return false;

    // The candidate rows: the tightest single-position posting list
    // available, or every row of the relation.
    const PreparedFact& p = prepared_[best_idx];
    const std::vector<uint32_t>* list = nullptr;
    std::size_t list_size = p.store->rows();
    for (std::size_t pos = 0; pos < p.arity; ++pos) {
      uint32_t vid = terms_[p.begin + pos];
      if (is_null_[p.begin + pos]) {
        vid = binding_[vid];
        if (vid == Value::kInvalidPackedId) continue;
      }
      const std::vector<uint32_t>* rows = p.store->RowsWith(pos, vid);
      if (rows == nullptr) return false;  // no candidate at all
      if (rows->size() < list_size) {
        list = rows;
        list_size = rows->size();
      }
    }

    matched_[best_idx] = true;
    const uint32_t n_rows = static_cast<uint32_t>(p.store->rows());
    std::vector<uint32_t>& newly_bound = bind_stack_[remaining - 1];
    for (uint32_t k = 0; k < (list ? list->size() : n_rows); ++k) {
      const uint32_t row = list ? (*list)[k] : k;
      const uint32_t ordinal = p.store->ordinals[row];
      if (ordinal == excluded_) continue;
      if (mask_ != nullptr && !mask_->alive(ordinal)) continue;
      ++candidate_pairs_;
      newly_bound.clear();
      if (TryUnify(p, row, &newly_bound)) {
        if (Search(remaining - 1)) return true;
        if (budget_exceeded_) {
          Rollback(newly_bound);
          break;
        }
      }
      ++backtracks_;
      Rollback(newly_bound);
    }
    matched_[best_idx] = false;
    return false;
  }

  // Attempts to extend the binding so that source row `p` maps onto target
  // row `row` of its relation. On success the slots newly bound are
  // appended to `newly_bound`; on failure any partial additions are
  // recorded there too (caller rolls back either way).
  bool TryUnify(const PreparedFact& p, uint32_t row,
                std::vector<uint32_t>* newly_bound) {
    for (std::size_t pos = 0; pos < p.arity; ++pos) {
      const uint32_t gv = p.store->cols[pos][row];
      if (!is_null_[p.begin + pos]) {
        if (terms_[p.begin + pos] != gv) return false;
        continue;
      }
      const uint32_t slot = terms_[p.begin + pos];
      const uint32_t bound = binding_[slot];
      if (bound != Value::kInvalidPackedId) {
        if (bound != gv) return false;
      } else {
        if (options_.nulls_to_nulls && (gv & 1u) == 0) return false;
        if (options_.injective && !used_targets_.insert(gv).second) {
          return false;
        }
        binding_[slot] = gv;
        newly_bound->push_back(slot);
      }
    }
    return true;
  }

  void Rollback(const std::vector<uint32_t>& newly_bound) {
    for (uint32_t slot : newly_bound) {
      if (options_.injective) used_targets_.erase(binding_[slot]);
      binding_[slot] = Value::kInvalidPackedId;
    }
  }

  const FactIndex& index_;
  const FactMask* mask_;
  uint32_t excluded_;
  HomomorphismOptions options_;
  std::vector<const Fact*> source_facts_;
  std::vector<PreparedFact> prepared_;
  std::vector<uint32_t> terms_;    // shared arena, see PreparedFact
  std::vector<uint8_t> is_null_;   // shared arena, see PreparedFact
  // Per-depth undo lists, reused across candidates so the hot loop never
  // allocates. Indexed by `remaining - 1`; deeper calls use lower indices.
  std::vector<std::vector<uint32_t>> bind_stack_;
  std::vector<Value> slot_values_;  // slot -> the source null it stands for
  std::vector<bool> matched_;
  std::vector<uint32_t> binding_;  // slot -> target packed id, or invalid
  std::unordered_set<uint32_t> used_targets_;  // injective mode
  uint64_t steps_ = 0;
  uint64_t candidate_pairs_ = 0;
  uint64_t backtracks_ = 0;
  bool budget_exceeded_ = false;

 public:
  uint64_t steps() const { return steps_; }
  uint64_t candidate_pairs() const { return candidate_pairs_; }
  uint64_t backtracks() const { return backtracks_; }
};

}  // namespace

namespace {

// One-pass domain filter: for every null of `from`, intersect its
// candidate values over all (fact, position) occurrences against the
// target index. Returns false if some null's domain is empty (no
// homomorphism can exist). Ground facts are checked for membership
// directly. Conservative: never rejects a satisfiable input. Domains are
// sets of packed value ids, so the inner loops are uint32 column scans.
bool DomainFilterPasses(const Instance& from, const Instance& to,
                        const ValueMap& seed) {
  FactIndex index(to);
  std::unordered_map<uint32_t, std::unordered_set<uint32_t>> domains;
  for (const Fact& f : from.facts()) {
    if (f.IsGround()) {
      if (!to.Contains(f)) return false;
      continue;
    }
    const FactIndex::RelStore* store = index.StoreOf(f.relation());
    if (store == nullptr) return false;
    for (std::size_t i = 0; i < f.args().size(); ++i) {
      const Value& v = f.args()[i];
      if (!v.IsNull()) {
        // Constant position: some target fact must carry it here.
        if (store->RowsWith(i, v.PackedId()) == nullptr) return false;
        continue;
      }
      std::unordered_set<uint32_t> here;
      for (uint32_t gv : store->cols[i]) {
        here.insert(gv);
      }
      auto it = domains.find(v.PackedId());
      if (it == domains.end()) {
        domains.emplace(v.PackedId(), std::move(here));
      } else {
        // Intersect in place.
        for (auto dit = it->second.begin(); dit != it->second.end();) {
          if (here.count(*dit) == 0) {
            dit = it->second.erase(dit);
          } else {
            ++dit;
          }
        }
        if (it->second.empty()) return false;
      }
    }
  }
  // Seed bindings must lie within the computed domains.
  for (const auto& [k, v] : seed) {
    auto it = domains.find(k.PackedId());
    if (it != domains.end() && it->second.count(v.PackedId()) == 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

namespace {

// Seed sanity: a seed may not rebind a constant to something else.
Status CheckSeed(const ValueMap& seed) {
  for (const auto& [k, v] : seed) {
    if (k.IsConstant() && !(k == v)) {
      return Status::InvalidArgument(
          StrCat("seed maps constant ", k.ToString(), " to ", v.ToString()));
    }
  }
  return Status::OK();
}

// Shared tail of every public search entry point: run the backtracking
// search over `source_facts` against `index` (optionally masked) and
// publish one batch of stats.
Result<std::optional<ValueMap>> RunSearch(
    std::vector<const Fact*> source_facts, const FactIndex& index,
    const FactMask* mask, uint32_t excluded, const ValueMap& seed,
    const HomomorphismOptions& options, HomomorphismStats run,
    const obs::ScopedTimer& timer) {
  const uint64_t from_facts = source_facts.size();
  obs::Span span("hom");
  HomSearch search(std::move(source_facts), index, options, mask, excluded);
  Result<std::optional<ValueMap>> result = search.Run(seed);
  run.steps = search.steps();
  run.candidate_pairs = search.candidate_pairs();
  run.backtracks = search.backtracks();
  run.found = (result.ok() && result->has_value()) ? 1 : 0;
  run.micros = timer.ElapsedMicros();
  span.Arg("from_facts", from_facts)
      .Arg("steps", run.steps)
      .Arg("found", run.found);
  PublishHomStats(run, options.stats, from_facts);
  return result;
}

}  // namespace

Result<std::optional<ValueMap>> FindHomomorphism(
    const Instance& from, const Instance& to, const ValueMap& seed,
    const HomomorphismOptions& options) {
  FactIndex index(to);
  return FindHomomorphism(from, to, index, seed, options);
}

Result<std::optional<ValueMap>> FindHomomorphism(
    const Instance& from, const Instance& to, const FactIndex& to_index,
    const ValueMap& seed, const HomomorphismOptions& options) {
  RDX_RETURN_IF_ERROR(CheckSeed(seed));
  HomomorphismStats run;
  obs::ScopedTimer timer;
  if (options.use_domain_filter && !DomainFilterPasses(from, to, seed)) {
    run.domain_filter_prunes = 1;
    run.micros = timer.ElapsedMicros();
    PublishHomStats(run, options.stats, from.size());
    return std::optional<ValueMap>();
  }
  std::vector<const Fact*> source_facts;
  source_facts.reserve(from.size());
  for (const Fact& f : from.facts()) {
    source_facts.push_back(&f);
  }
  return RunSearch(std::move(source_facts), to_index, /*mask=*/nullptr,
                   /*excluded=*/kNoFactOrdinal, seed, options, run, timer);
}

Result<std::optional<ValueMap>> FindHomomorphismMasked(
    const std::vector<const Fact*>& from_facts, const FactIndex& to_index,
    const FactMask* mask, uint32_t excluded,
    const HomomorphismOptions& options) {
  obs::ScopedTimer timer;
  return RunSearch(from_facts, to_index, mask, excluded, /*seed=*/{},
                   options, HomomorphismStats(), timer);
}

Result<bool> HasHomomorphism(const Instance& from, const Instance& to,
                             const HomomorphismOptions& options) {
  RDX_ASSIGN_OR_RETURN(std::optional<ValueMap> h,
                       FindHomomorphism(from, to, {}, options));
  return h.has_value();
}

Result<bool> AreHomEquivalent(const Instance& a, const Instance& b,
                              const HomomorphismOptions& options) {
  RDX_ASSIGN_OR_RETURN(bool ab, HasHomomorphism(a, b, options));
  if (!ab) return false;
  return HasHomomorphism(b, a, options);
}

Result<bool> AreIsomorphic(const Instance& a, const Instance& b,
                           const HomomorphismOptions& options) {
  if (a.size() != b.size()) return false;
  if (a.ActiveDomain().size() != b.ActiveDomain().size()) return false;
  HomomorphismOptions iso_options = options;
  iso_options.injective = true;
  iso_options.nulls_to_nulls = true;
  // An injective null-to-null homomorphism between equal-sized instances
  // maps facts injectively, so its image is all of b; the inverse fixes
  // constants (nulls map to nulls) and maps b's facts back into a — an
  // isomorphism.
  RDX_ASSIGN_OR_RETURN(std::optional<ValueMap> h,
                       FindHomomorphism(a, b, {}, iso_options));
  return h.has_value();
}

}  // namespace rdx
