#include "core/homomorphism.h"

#include <algorithm>
#include <limits>

#include "base/metrics.h"
#include "base/spans.h"
#include "base/strings.h"
#include "base/trace.h"
#include "core/fact_index.h"

namespace rdx {
namespace {

// Batched publish of one search run's totals to the "hom.*" counters plus
// the caller's accumulator (if any) and, when tracing, a "hom.search"
// event.
void PublishHomStats(const HomomorphismStats& run,
                     HomomorphismStats* accumulator, uint64_t from_facts) {
  static obs::Counter& searches = obs::Counter::Get("hom.searches");
  static obs::Counter& steps = obs::Counter::Get("hom.steps");
  static obs::Counter& pairs = obs::Counter::Get("hom.candidate_pairs");
  static obs::Counter& backtracks = obs::Counter::Get("hom.backtracks");
  static obs::Counter& prunes = obs::Counter::Get("hom.domain_filter_prunes");
  static obs::Counter& found = obs::Counter::Get("hom.found");
  static obs::Counter& us = obs::Counter::Get("hom.us");
  searches.Increment();
  steps.Add(run.steps);
  pairs.Add(run.candidate_pairs);
  backtracks.Add(run.backtracks);
  prunes.Add(run.domain_filter_prunes);
  found.Add(run.found);
  us.Add(run.micros);
  if (accumulator != nullptr) {
    accumulator->searches += 1;
    accumulator->steps += run.steps;
    accumulator->candidate_pairs += run.candidate_pairs;
    accumulator->backtracks += run.backtracks;
    accumulator->domain_filter_prunes += run.domain_filter_prunes;
    accumulator->found += run.found;
    accumulator->micros += run.micros;
  }
  if (obs::TracingEnabled()) {
    obs::EmitTrace(obs::TraceEvent("hom.search")
                       .Add("from_facts", from_facts)
                       .Add("steps", run.steps)
                       .Add("pairs", run.candidate_pairs)
                       .Add("backtracks", run.backtracks)
                       .Add("pruned", run.domain_filter_prunes != 0)
                       .Add("found", run.found != 0)
                       .Add("us", run.micros));
  }
}

class HomSearch {
 public:
  HomSearch(std::vector<const Fact*> source_facts, const FactIndex& index,
            const HomomorphismOptions& options,
            const FactMask* mask = nullptr, const Fact* excluded = nullptr)
      : index_(index),
        mask_(mask),
        excluded_(excluded),
        options_(options),
        source_facts_(std::move(source_facts)) {}

  Result<std::optional<ValueMap>> Run(const ValueMap& seed) {
    binding_ = seed;
    if (options_.injective) {
      // Constants of the source are their own (reserved) images; seed
      // bindings occupy their targets too.
      for (const Fact* f : source_facts_) {
        for (const Value& v : f->args()) {
          if (v.IsConstant()) used_targets_.insert(v);
        }
      }
      for (const auto& [from, to] : seed) {
        if (from.IsNull()) {
          if (!used_targets_.insert(to).second) {
            return std::optional<ValueMap>();  // seed already non-injective
          }
        }
      }
    }
    matched_.assign(source_facts_.size(), false);
    steps_ = 0;
    bool found = Search(source_facts_.size());
    if (budget_exceeded_) {
      return Status::ResourceExhausted(
          StrCat("homomorphism search exceeded ", options_.max_steps,
                 " steps"));
    }
    if (!found) return std::optional<ValueMap>();
    return std::optional<ValueMap>(binding_);
  }

 private:
  // True if target fact `g` is part of the (possibly masked) search
  // target. Index candidate lists are not mask-aware, so every consumer
  // of a candidate filters through this.
  bool Admissible(const Fact* g) const {
    if (g == excluded_) return false;
    return mask_ == nullptr || mask_->alive(g);
  }

  // Number of target candidates compatible with the current binding for
  // source fact `f`, or a cheap upper bound (masked-out facts are still
  // counted, so masking only weakens the bound, never unsoundly prunes).
  // Used for the most-constrained-fact-first heuristic.
  std::size_t CandidateBound(const Fact& f) const {
    std::size_t best = std::numeric_limits<std::size_t>::max();
    const std::vector<const Fact*>* all = index_.FactsOf(f.relation());
    if (all == nullptr) return 0;
    best = all->size();
    for (std::size_t i = 0; i < f.args().size(); ++i) {
      Value v = f.args()[i];
      if (v.IsNull()) {
        auto it = binding_.find(v);
        if (it == binding_.end()) continue;
        v = it->second;
      }
      const std::vector<const Fact*>* filtered =
          index_.FactsWith(f.relation(), i, v);
      std::size_t n = (filtered == nullptr) ? 0 : filtered->size();
      best = std::min(best, n);
    }
    return best;
  }

  // The candidate list for `f`: the tightest single-position filter
  // available, or all facts of the relation.
  const std::vector<const Fact*>* Candidates(const Fact& f) const {
    const std::vector<const Fact*>* best = index_.FactsOf(f.relation());
    if (best == nullptr) return nullptr;
    for (std::size_t i = 0; i < f.args().size(); ++i) {
      Value v = f.args()[i];
      if (v.IsNull()) {
        auto it = binding_.find(v);
        if (it == binding_.end()) continue;
        v = it->second;
      }
      const std::vector<const Fact*>* filtered =
          index_.FactsWith(f.relation(), i, v);
      if (filtered == nullptr) return nullptr;  // no candidate at all
      if (filtered->size() < best->size()) best = filtered;
    }
    return best;
  }

  bool Search(std::size_t remaining) {
    if (remaining == 0) return true;
    if (++steps_ > options_.max_steps) {
      budget_exceeded_ = true;
      return false;
    }

    // Pick the unmatched source fact with the fewest candidates.
    std::size_t best_idx = source_facts_.size();
    std::size_t best_bound = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < source_facts_.size(); ++i) {
      if (matched_[i]) continue;
      std::size_t bound = CandidateBound(*source_facts_[i]);
      if (bound < best_bound) {
        best_bound = bound;
        best_idx = i;
        if (bound == 0) break;
      }
    }
    if (best_bound == 0) return false;

    const Fact& f = *source_facts_[best_idx];
    const std::vector<const Fact*>* candidates = Candidates(f);
    if (candidates == nullptr) return false;

    matched_[best_idx] = true;
    for (const Fact* g : *candidates) {
      if (!Admissible(g)) continue;
      ++candidate_pairs_;
      std::vector<Value> newly_bound;
      if (TryUnify(f, *g, &newly_bound)) {
        if (Search(remaining - 1)) return true;
        if (budget_exceeded_) break;
      }
      ++backtracks_;
      for (const Value& v : newly_bound) {
        auto it = binding_.find(v);
        if (options_.injective && it != binding_.end()) {
          used_targets_.erase(it->second);
        }
        binding_.erase(it);
      }
    }
    matched_[best_idx] = false;
    return false;
  }

  // Attempts to extend the binding so that f maps onto g. On success the
  // nulls newly bound are appended to `newly_bound`; on failure any partial
  // additions are recorded there too (caller rolls back either way).
  bool TryUnify(const Fact& f, const Fact& g,
                std::vector<Value>* newly_bound) {
    const std::vector<Value>& fa = f.args();
    const std::vector<Value>& ga = g.args();
    for (std::size_t i = 0; i < fa.size(); ++i) {
      const Value& v = fa[i];
      if (v.IsConstant()) {
        if (!(ga[i] == v)) return false;
        continue;
      }
      auto it = binding_.find(v);
      if (it != binding_.end()) {
        if (!(it->second == ga[i])) return false;
      } else {
        if (options_.nulls_to_nulls && !ga[i].IsNull()) return false;
        if (options_.injective && !used_targets_.insert(ga[i]).second) {
          return false;
        }
        binding_.emplace(v, ga[i]);
        newly_bound->push_back(v);
      }
    }
    return true;
  }

  const FactIndex& index_;
  const FactMask* mask_;
  const Fact* excluded_;
  HomomorphismOptions options_;
  std::vector<const Fact*> source_facts_;
  std::vector<bool> matched_;
  ValueMap binding_;
  std::unordered_set<Value, ValueHash> used_targets_;  // injective mode
  uint64_t steps_ = 0;
  uint64_t candidate_pairs_ = 0;
  uint64_t backtracks_ = 0;
  bool budget_exceeded_ = false;

 public:
  uint64_t steps() const { return steps_; }
  uint64_t candidate_pairs() const { return candidate_pairs_; }
  uint64_t backtracks() const { return backtracks_; }
};

}  // namespace

namespace {

// One-pass domain filter: for every null of `from`, intersect its
// candidate values over all (fact, position) occurrences against the
// target index. Returns false if some null's domain is empty (no
// homomorphism can exist). Ground facts are checked for membership
// directly. Conservative: never rejects a satisfiable input.
bool DomainFilterPasses(const Instance& from, const Instance& to,
                        const ValueMap& seed) {
  FactIndex index(to);
  std::unordered_map<Value, std::unordered_set<Value, ValueHash>, ValueHash>
      domains;
  for (const Fact& f : from.facts()) {
    if (f.IsGround()) {
      if (!to.Contains(f)) return false;
      continue;
    }
    for (std::size_t i = 0; i < f.args().size(); ++i) {
      const Value& v = f.args()[i];
      if (!v.IsNull()) {
        // Constant position: some target fact must carry it here.
        if (index.FactsWith(f.relation(), i, v) == nullptr) return false;
        continue;
      }
      const std::vector<const Fact*>* candidates =
          index.FactsOf(f.relation());
      if (candidates == nullptr) return false;
      std::unordered_set<Value, ValueHash> here;
      for (const Fact* g : *candidates) {
        here.insert(g->args()[i]);
      }
      auto it = domains.find(v);
      if (it == domains.end()) {
        domains.emplace(v, std::move(here));
      } else {
        // Intersect in place.
        for (auto dit = it->second.begin(); dit != it->second.end();) {
          if (here.count(*dit) == 0) {
            dit = it->second.erase(dit);
          } else {
            ++dit;
          }
        }
      }
      auto current = domains.find(v);
      if (current->second.empty()) return false;
    }
  }
  // Seed bindings must lie within the computed domains.
  for (const auto& [k, v] : seed) {
    auto it = domains.find(k);
    if (it != domains.end() && it->second.count(v) == 0) return false;
  }
  return true;
}

}  // namespace

namespace {

// Seed sanity: a seed may not rebind a constant to something else.
Status CheckSeed(const ValueMap& seed) {
  for (const auto& [k, v] : seed) {
    if (k.IsConstant() && !(k == v)) {
      return Status::InvalidArgument(
          StrCat("seed maps constant ", k.ToString(), " to ", v.ToString()));
    }
  }
  return Status::OK();
}

// Shared tail of every public search entry point: run the backtracking
// search over `source_facts` against `index` (optionally masked) and
// publish one batch of stats.
Result<std::optional<ValueMap>> RunSearch(
    std::vector<const Fact*> source_facts, const FactIndex& index,
    const FactMask* mask, const Fact* excluded, const ValueMap& seed,
    const HomomorphismOptions& options, HomomorphismStats run,
    const obs::ScopedTimer& timer) {
  const uint64_t from_facts = source_facts.size();
  obs::Span span("hom");
  HomSearch search(std::move(source_facts), index, options, mask, excluded);
  Result<std::optional<ValueMap>> result = search.Run(seed);
  run.steps = search.steps();
  run.candidate_pairs = search.candidate_pairs();
  run.backtracks = search.backtracks();
  run.found = (result.ok() && result->has_value()) ? 1 : 0;
  run.micros = timer.ElapsedMicros();
  span.Arg("from_facts", from_facts)
      .Arg("steps", run.steps)
      .Arg("found", run.found);
  PublishHomStats(run, options.stats, from_facts);
  return result;
}

}  // namespace

Result<std::optional<ValueMap>> FindHomomorphism(
    const Instance& from, const Instance& to, const ValueMap& seed,
    const HomomorphismOptions& options) {
  FactIndex index(to);
  return FindHomomorphism(from, to, index, seed, options);
}

Result<std::optional<ValueMap>> FindHomomorphism(
    const Instance& from, const Instance& to, const FactIndex& to_index,
    const ValueMap& seed, const HomomorphismOptions& options) {
  RDX_RETURN_IF_ERROR(CheckSeed(seed));
  HomomorphismStats run;
  obs::ScopedTimer timer;
  if (options.use_domain_filter && !DomainFilterPasses(from, to, seed)) {
    run.domain_filter_prunes = 1;
    run.micros = timer.ElapsedMicros();
    PublishHomStats(run, options.stats, from.size());
    return std::optional<ValueMap>();
  }
  std::vector<const Fact*> source_facts;
  source_facts.reserve(from.size());
  for (const Fact& f : from.facts()) {
    source_facts.push_back(&f);
  }
  return RunSearch(std::move(source_facts), to_index, /*mask=*/nullptr,
                   /*excluded=*/nullptr, seed, options, run, timer);
}

Result<std::optional<ValueMap>> FindHomomorphismMasked(
    const std::vector<const Fact*>& from_facts, const FactIndex& to_index,
    const FactMask* mask, const Fact* excluded,
    const HomomorphismOptions& options) {
  obs::ScopedTimer timer;
  return RunSearch(from_facts, to_index, mask, excluded, /*seed=*/{},
                   options, HomomorphismStats(), timer);
}

Result<bool> HasHomomorphism(const Instance& from, const Instance& to,
                             const HomomorphismOptions& options) {
  RDX_ASSIGN_OR_RETURN(std::optional<ValueMap> h,
                       FindHomomorphism(from, to, {}, options));
  return h.has_value();
}

Result<bool> AreHomEquivalent(const Instance& a, const Instance& b,
                              const HomomorphismOptions& options) {
  RDX_ASSIGN_OR_RETURN(bool ab, HasHomomorphism(a, b, options));
  if (!ab) return false;
  return HasHomomorphism(b, a, options);
}

Result<bool> AreIsomorphic(const Instance& a, const Instance& b,
                           const HomomorphismOptions& options) {
  if (a.size() != b.size()) return false;
  if (a.ActiveDomain().size() != b.ActiveDomain().size()) return false;
  HomomorphismOptions iso_options = options;
  iso_options.injective = true;
  iso_options.nulls_to_nulls = true;
  // An injective null-to-null homomorphism between equal-sized instances
  // maps facts injectively, so its image is all of b; the inverse fixes
  // constants (nulls map to nulls) and maps b's facts back into a — an
  // isomorphism.
  RDX_ASSIGN_OR_RETURN(std::optional<ValueMap> h,
                       FindHomomorphism(a, b, {}, iso_options));
  return h.has_value();
}

}  // namespace rdx
