#include "core/dependency.h"

#include <algorithm>
#include <cstdlib>

#include "base/strings.h"

namespace rdx {
namespace {

bool ContainsVar(const std::vector<Variable>& vars, Variable v) {
  return std::find(vars.begin(), vars.end(), v) != vars.end();
}

}  // namespace

std::string SourceLocation::ToString() const {
  if (!IsKnown()) return "unknown location";
  return StrCat("line ", line, ", column ", column);
}

Result<Dependency> Dependency::Make(
    std::vector<Atom> body, std::vector<std::vector<Atom>> disjuncts) {
  // Collect universal variables from relational body atoms.
  std::vector<Variable> universal;
  bool has_relational_body = false;
  for (const Atom& a : body) {
    if (a.IsRelational()) {
      has_relational_body = true;
      for (Variable v : a.Vars()) {
        if (!ContainsVar(universal, v)) universal.push_back(v);
      }
    }
  }
  if (!has_relational_body) {
    return Status::InvalidArgument(
        "dependency body must contain at least one relational atom");
  }
  // Safety of builtins.
  for (const Atom& a : body) {
    if (a.IsRelational()) continue;
    for (Variable v : a.Vars()) {
      if (!ContainsVar(universal, v)) {
        return Status::InvalidArgument(
            StrCat("builtin atom '", a.ToString(), "' uses variable '",
                   v.name(), "' not occurring in a relational body atom"));
      }
    }
  }
  if (disjuncts.empty()) {
    return Status::InvalidArgument("dependency must have at least one disjunct");
  }
  for (const auto& disjunct : disjuncts) {
    if (disjunct.empty()) {
      return Status::InvalidArgument("dependency disjunct must be non-empty");
    }
    for (const Atom& a : disjunct) {
      if (!a.IsRelational()) {
        return Status::InvalidArgument(
            StrCat("head atom '", a.ToString(), "' must be relational"));
      }
    }
  }
  return Dependency(std::move(body), std::move(disjuncts),
                    std::move(universal));
}

Result<Dependency> Dependency::MakeTgd(std::vector<Atom> body,
                                       std::vector<Atom> head) {
  std::vector<std::vector<Atom>> disjuncts;
  disjuncts.push_back(std::move(head));
  return Make(std::move(body), std::move(disjuncts));
}

Dependency Dependency::MustMake(std::vector<Atom> body,
                                std::vector<std::vector<Atom>> disjuncts) {
  Result<Dependency> d = Make(std::move(body), std::move(disjuncts));
  if (!d.ok()) {
    std::abort();
  }
  return *std::move(d);
}

Dependency Dependency::MustMakeTgd(std::vector<Atom> body,
                                   std::vector<Atom> head) {
  Result<Dependency> d = MakeTgd(std::move(body), std::move(head));
  if (!d.ok()) {
    std::abort();
  }
  return *std::move(d);
}

std::vector<Atom> Dependency::RelationalBody() const {
  std::vector<Atom> out;
  for (const Atom& a : body_) {
    if (a.IsRelational()) out.push_back(a);
  }
  return out;
}

std::vector<Atom> Dependency::BuiltinBody() const {
  std::vector<Atom> out;
  for (const Atom& a : body_) {
    if (!a.IsRelational()) out.push_back(a);
  }
  return out;
}

std::vector<Variable> Dependency::ExistentialVars(std::size_t i) const {
  std::vector<Variable> out;
  for (const Atom& a : disjuncts_[i]) {
    for (Variable v : a.Vars()) {
      if (!ContainsVar(universal_vars_, v) && !ContainsVar(out, v)) {
        out.push_back(v);
      }
    }
  }
  return out;
}

bool Dependency::IsPlainTgd() const {
  return disjuncts_.size() == 1 && BuiltinBody().empty();
}

bool Dependency::IsFull() const {
  for (std::size_t i = 0; i < disjuncts_.size(); ++i) {
    if (!ExistentialVars(i).empty()) return false;
  }
  return true;
}

bool Dependency::UsesInequalities() const {
  for (const Atom& a : body_) {
    if (a.kind() == Atom::Kind::kInequality) return true;
  }
  return false;
}

bool Dependency::UsesConstantPredicate() const {
  for (const Atom& a : body_) {
    if (a.kind() == Atom::Kind::kIsConstant) return true;
  }
  return false;
}

std::vector<Relation> Dependency::BodyRelations() const {
  std::vector<Relation> out;
  for (const Atom& a : body_) {
    if (a.IsRelational() &&
        std::find(out.begin(), out.end(), a.relation()) == out.end()) {
      out.push_back(a.relation());
    }
  }
  return out;
}

std::vector<Relation> Dependency::HeadRelations() const {
  std::vector<Relation> out;
  for (const auto& disjunct : disjuncts_) {
    for (const Atom& a : disjunct) {
      if (std::find(out.begin(), out.end(), a.relation()) == out.end()) {
        out.push_back(a.relation());
      }
    }
  }
  return out;
}

std::string Dependency::ToString() const {
  std::vector<std::string> rendered;
  for (std::size_t i = 0; i < disjuncts_.size(); ++i) {
    std::vector<Variable> exist = ExistentialVars(i);
    std::string head = AtomsToString(disjuncts_[i]);
    if (!exist.empty()) {
      head = StrCat("EXISTS ",
                    JoinMapped(exist, ", ",
                               [](Variable v) { return v.name(); }),
                    ": ", head);
    }
    rendered.push_back(head);
  }
  return StrCat(AtomsToString(body_), " -> ", Join(rendered, " | "));
}

std::string Dependency::Describe() const {
  if (!location_.IsKnown()) return ToString();
  return StrCat(ToString(), " (at ", location_.ToString(), ")");
}

std::string DependenciesToString(const std::vector<Dependency>& deps) {
  return JoinMapped(deps, "\n",
                    [](const Dependency& d) { return d.ToString(); });
}

}  // namespace rdx
