#include "core/instance.h"

#include <algorithm>

#include "base/hash.h"
#include "base/strings.h"

namespace rdx {

Instance Instance::FromFacts(const std::vector<Fact>& facts) {
  Instance instance;
  for (const Fact& f : facts) {
    instance.AddFact(f);
  }
  return instance;
}

bool Instance::AddFact(const Fact& fact) {
  auto [it, inserted] = fact_set_.insert(fact);
  if (inserted) {
    facts_.push_back(fact);
  }
  return inserted;
}

bool Instance::RemoveFact(const Fact& fact) {
  auto it = fact_set_.find(fact);
  if (it == fact_set_.end()) return false;
  fact_set_.erase(it);
  facts_.erase(std::find(facts_.begin(), facts_.end(), fact));
  return true;
}

std::vector<const Fact*> Instance::FactsOf(Relation relation) const {
  std::vector<const Fact*> out;
  for (const Fact& f : facts_) {
    if (f.relation() == relation) out.push_back(&f);
  }
  return out;
}

Instance Instance::FromFactPointers(const std::vector<const Fact*>& facts) {
  Instance instance;
  for (const Fact* f : facts) {
    instance.AddFact(*f);
  }
  return instance;
}

std::vector<Relation> Instance::Relations() const {
  std::vector<Relation> out;
  for (const Fact& f : facts_) {
    if (std::find(out.begin(), out.end(), f.relation()) == out.end()) {
      out.push_back(f.relation());
    }
  }
  return out;
}

std::vector<Value> Instance::ActiveDomain() const {
  std::unordered_set<Value, ValueHash> seen;
  std::vector<Value> out;
  for (const Fact& f : facts_) {
    for (const Value& v : f.args()) {
      if (seen.insert(v).second) out.push_back(v);
    }
  }
  return out;
}

std::vector<Value> Instance::Nulls() const {
  std::unordered_set<Value, ValueHash> seen;
  std::vector<Value> out;
  for (const Fact& f : facts_) {
    for (const Value& v : f.args()) {
      if (v.IsNull() && seen.insert(v).second) out.push_back(v);
    }
  }
  return out;
}

bool Instance::IsGround() const {
  for (const Fact& f : facts_) {
    if (!f.IsGround()) return false;
  }
  return true;
}

bool Instance::ConformsTo(const Schema& schema) const {
  for (const Fact& f : facts_) {
    if (!schema.Contains(f.relation())) return false;
  }
  return true;
}

Instance Instance::Apply(const ValueMap& h) const {
  Instance out;
  for (const Fact& f : facts_) {
    std::vector<Value> args;
    args.reserve(f.args().size());
    for (const Value& v : f.args()) {
      auto it = h.find(v);
      args.push_back(it == h.end() ? v : it->second);
    }
    out.AddFact(Fact::MustMake(f.relation(), std::move(args)));
  }
  return out;
}

Instance Instance::RenameNullsFresh(ValueMap* renaming_out) const {
  ValueMap renaming;
  for (const Value& v : Nulls()) {
    renaming.emplace(v, Value::FreshNull());
  }
  Instance out = Apply(renaming);
  if (renaming_out != nullptr) {
    *renaming_out = std::move(renaming);
  }
  return out;
}

Instance Instance::Union(const Instance& a, const Instance& b) {
  Instance out = a;
  for (const Fact& f : b.facts()) {
    out.AddFact(f);
  }
  return out;
}

bool Instance::SubsetOf(const Instance& other) const {
  for (const Fact& f : facts_) {
    if (!other.Contains(f)) return false;
  }
  return true;
}

bool operator==(const Instance& a, const Instance& b) {
  return a.size() == b.size() && a.SubsetOf(b);
}

std::string Instance::ToString() const {
  std::vector<Fact> sorted(facts_.begin(), facts_.end());
  std::sort(sorted.begin(), sorted.end());
  return StrCat("{",
                JoinMapped(sorted, ", ",
                           [](const Fact& f) { return f.ToString(); }),
                "}");
}

std::size_t Instance::Hash() const {
  // XOR of fact hashes is order-insensitive.
  std::size_t h = 0x51ed2701a2b3c4d5ULL;
  for (const Fact& f : facts_) {
    h ^= f.Hash();
  }
  return h;
}

}  // namespace rdx
