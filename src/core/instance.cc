#include "core/instance.h"

#include <algorithm>

#include "base/hash.h"
#include "base/strings.h"

namespace rdx {

Instance Instance::FromFacts(const std::vector<Fact>& facts) {
  Instance instance;
  for (const Fact& f : facts) {
    instance.AddFact(f);
  }
  return instance;
}

bool Instance::AddFact(const Fact& fact) {
  auto [it, inserted] = fact_set_.insert(fact);
  if (inserted) {
    facts_.push_back(fact);
  }
  return inserted;
}

bool Instance::RemoveFact(const Fact& fact) {
  auto it = fact_set_.find(fact);
  if (it == fact_set_.end()) return false;
  fact_set_.erase(it);
  facts_.erase(std::find(facts_.begin(), facts_.end(), fact));
  return true;
}

std::vector<const Fact*> Instance::FactsOf(Relation relation) const {
  std::vector<const Fact*> out;
  for (const Fact& f : facts_) {
    if (f.relation() == relation) out.push_back(&f);
  }
  return out;
}

Instance Instance::FromFactPointers(const std::vector<const Fact*>& facts) {
  Instance instance;
  for (const Fact* f : facts) {
    instance.AddFact(*f);
  }
  return instance;
}

std::vector<Relation> Instance::Relations() const {
  std::vector<Relation> out;
  for (const Fact& f : facts_) {
    if (std::find(out.begin(), out.end(), f.relation()) == out.end()) {
      out.push_back(f.relation());
    }
  }
  return out;
}

std::vector<Value> Instance::ActiveDomain() const {
  std::unordered_set<Value, ValueHash> seen;
  std::vector<Value> out;
  for (const Fact& f : facts_) {
    for (const Value& v : f.args()) {
      if (seen.insert(v).second) out.push_back(v);
    }
  }
  return out;
}

std::vector<Value> Instance::Nulls() const {
  std::unordered_set<Value, ValueHash> seen;
  std::vector<Value> out;
  for (const Fact& f : facts_) {
    for (const Value& v : f.args()) {
      if (v.IsNull() && seen.insert(v).second) out.push_back(v);
    }
  }
  return out;
}

bool Instance::IsGround() const {
  for (const Fact& f : facts_) {
    if (!f.IsGround()) return false;
  }
  return true;
}

bool Instance::ConformsTo(const Schema& schema) const {
  for (const Fact& f : facts_) {
    if (!schema.Contains(f.relation())) return false;
  }
  return true;
}

Instance Instance::Apply(const ValueMap& h) const {
  Instance out;
  for (const Fact& f : facts_) {
    std::vector<Value> args;
    args.reserve(f.args().size());
    for (const Value& v : f.args()) {
      auto it = h.find(v);
      args.push_back(it == h.end() ? v : it->second);
    }
    out.AddFact(Fact::MustMake(f.relation(), std::move(args)));
  }
  return out;
}

namespace {

// FNV-1a over bytes: deterministic across processes and binaries (unlike
// std::hash), which CanonicalForm needs for byte-identical rendering.
uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t FnvString(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Instance Instance::CanonicalForm() const {
  const std::vector<Value> nulls = Nulls();
  if (nulls.empty()) return *this;

  // Colors are structure-derived only: constants contribute their name
  // hash, nulls their current refinement color — never an interning id,
  // so two processes that built the same instance differently agree.
  std::unordered_map<Value, uint64_t, ValueHash> color;
  for (const Value& n : nulls) color.emplace(n, 0);
  auto value_color = [&](const Value& v) -> uint64_t {
    if (v.IsNull()) return color.at(v) * 2 + 1;  // tag nulls odd
    return FnvString(v.name()) * 2;
  };
  auto distinct_colors = [&]() {
    std::unordered_set<uint64_t> seen;
    for (const Value& n : nulls) seen.insert(color.at(n));
    return seen.size();
  };

  // One refinement round: each null's new color folds in the hash of
  // every occurrence (fact hash under current colors, position).
  auto refine_round = [&]() {
    std::unordered_map<Value, std::vector<uint64_t>, ValueHash> occurrences;
    for (const Fact& f : facts_) {
      uint64_t fh = FnvString(f.relation().name());
      fh = FnvMix(fh, f.args().size());
      for (const Value& v : f.args()) fh = FnvMix(fh, value_color(v));
      for (std::size_t p = 0; p < f.args().size(); ++p) {
        if (f.args()[p].IsNull()) {
          occurrences[f.args()[p]].push_back(FnvMix(fh, p));
        }
      }
    }
    std::unordered_map<Value, uint64_t, ValueHash> next;
    for (const Value& n : nulls) {
      std::vector<uint64_t>& occ = occurrences[n];
      std::sort(occ.begin(), occ.end());
      uint64_t h = FnvMix(0x9e3779b97f4a7c15ULL, color.at(n));
      for (uint64_t o : occ) h = FnvMix(h, o);
      next[n] = h;
    }
    color = std::move(next);
  };
  auto refine = [&]() {
    std::size_t classes = distinct_colors();
    for (std::size_t round = 0; round <= nulls.size(); ++round) {
      refine_round();
      std::size_t now = distinct_colors();
      if (now == classes) break;
      classes = now;
    }
  };

  refine();
  // Individualize-and-refine for tied classes: split off one member of
  // the smallest-colored multi-member class and re-refine. Automorphic
  // orbits render identically whichever member the tie-break picks; see
  // the header comment for the (non-automorphic) incompleteness caveat.
  uint64_t tag = 1;
  std::size_t steps = 0;
  while (distinct_colors() < nulls.size() && steps++ < 4 * nulls.size() + 8) {
    std::unordered_map<uint64_t, std::size_t> count;
    for (const Value& n : nulls) ++count[color.at(n)];
    uint64_t pick_color = 0;
    bool have = false;
    for (const auto& [c, k] : count) {
      if (k > 1 && (!have || c < pick_color)) {
        pick_color = c;
        have = true;
      }
    }
    for (const Value& n : nulls) {  // first occurrence in fact order wins
      if (color.at(n) == pick_color) {
        color[n] = FnvMix(FnvMix(0x2545f4914f6cdd1dULL, pick_color), tag++);
        break;
      }
    }
    refine();
  }

  // Rename in color order: the multiset of colors is structure-determined,
  // so isomorphic (refinement-separable) instances get identical labels.
  std::vector<std::pair<uint64_t, Value>> ordered;
  ordered.reserve(nulls.size());
  for (const Value& n : nulls) ordered.emplace_back(color.at(n), n);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  ValueMap renaming;
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    renaming.emplace(ordered[i].second, Value::MakeNull(StrCat("c", i)));
  }
  return Apply(renaming);
}

Instance Instance::RenameNullsFresh(ValueMap* renaming_out) const {
  ValueMap renaming;
  for (const Value& v : Nulls()) {
    renaming.emplace(v, Value::FreshNull());
  }
  Instance out = Apply(renaming);
  if (renaming_out != nullptr) {
    *renaming_out = std::move(renaming);
  }
  return out;
}

Instance Instance::Union(const Instance& a, const Instance& b) {
  Instance out = a;
  for (const Fact& f : b.facts()) {
    out.AddFact(f);
  }
  return out;
}

bool Instance::SubsetOf(const Instance& other) const {
  for (const Fact& f : facts_) {
    if (!other.Contains(f)) return false;
  }
  return true;
}

bool operator==(const Instance& a, const Instance& b) {
  return a.size() == b.size() && a.SubsetOf(b);
}

std::string Instance::ToString() const {
  std::vector<Fact> sorted(facts_.begin(), facts_.end());
  std::sort(sorted.begin(), sorted.end());
  return StrCat("{",
                JoinMapped(sorted, ", ",
                           [](const Fact& f) { return f.ToString(); }),
                "}");
}

std::string Instance::CanonicalText() const {
  const Instance canon = CanonicalForm();
  std::vector<std::string> rendered;
  rendered.reserve(canon.size());
  for (const Fact& f : canon.facts()) rendered.push_back(f.ToString());
  std::sort(rendered.begin(), rendered.end());
  return StrCat("{", Join(rendered, ", "), "}");
}

std::size_t Instance::Hash() const {
  // XOR of fact hashes is order-insensitive.
  std::size_t h = 0x51ed2701a2b3c4d5ULL;
  for (const Fact& f : facts_) {
    h ^= f.Hash();
  }
  return h;
}

}  // namespace rdx
