#ifndef RDX_CORE_INSTANCE_PARSER_H_
#define RDX_CORE_INSTANCE_PARSER_H_

#include <string_view>

#include "base/status.h"
#include "core/instance.h"

namespace rdx {

/// Parses a textual instance description into an Instance.
///
/// Syntax: a sequence of facts separated by '.', ',' or whitespace, e.g.
///
///   "P(a, b). Q(?X, c)"
///
/// Bare identifiers and numbers are constants; tokens prefixed with '?' are
/// labeled nulls (the same label denotes the same null everywhere). Relation
/// symbols are interned with the observed arity; an arity clash with a
/// previously interned symbol is an error.
Result<Instance> ParseInstance(std::string_view text);

/// Like ParseInstance but aborts on parse errors; for literals in tests.
Instance MustParseInstance(std::string_view text);

}  // namespace rdx

#endif  // RDX_CORE_INSTANCE_PARSER_H_
