#ifndef RDX_CORE_QUERY_H_
#define RDX_CORE_QUERY_H_

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "core/atom.h"
#include "core/instance.h"
#include "core/match.h"

namespace rdx {

/// An answer tuple and a (deterministically ordered) set of answers.
using Tuple = std::vector<Value>;
using TupleSet = std::set<Tuple>;

/// A conjunctive query q(x̄) :- body, where body is a conjunction of
/// relational atoms (builtins tolerated for generality) and x̄ is the list
/// of free (answer) variables, each of which must occur in a relational
/// body atom.
class ConjunctiveQuery {
 public:
  static Result<ConjunctiveQuery> Make(std::vector<Variable> head_vars,
                                       std::vector<Atom> body);

  /// Parses "q(x, y) :- P(x, z) & Q(z, y)". The head name is arbitrary.
  static Result<ConjunctiveQuery> Parse(std::string_view text);

  /// Like Parse but aborts on error; for literals in tests and examples.
  static ConjunctiveQuery MustParse(std::string_view text);

  const std::vector<Variable>& head_vars() const { return head_vars_; }
  const std::vector<Atom>& body() const { return body_; }

  /// A boolean query has no answer variables; its answer set is {()} when
  /// satisfied and {} otherwise.
  bool IsBoolean() const { return head_vars_.empty(); }

  /// Evaluates q(I): the set of head-variable images over all matches of
  /// the body in `instance` (naive/unrestricted semantics — answers may
  /// contain nulls; apply DiscardTuplesWithNulls for the ↓ semantics).
  Result<TupleSet> Eval(const Instance& instance,
                        const MatchOptions& options = {}) const;

  std::string ToString() const;

 private:
  ConjunctiveQuery(std::vector<Variable> head_vars, std::vector<Atom> body)
      : head_vars_(std::move(head_vars)), body_(std::move(body)) {}

  std::vector<Variable> head_vars_;
  std::vector<Atom> body_;
};

/// q(I)↓: the answers containing no labeled null (Section 6.2).
TupleSet DiscardTuplesWithNulls(const TupleSet& tuples);

/// Intersection of a non-empty family of answer sets (certain answers).
TupleSet IntersectAll(const std::vector<TupleSet>& sets);

/// Renders an answer set as "{(a, b), (c, ?N1)}".
std::string TupleSetToString(const TupleSet& tuples);

}  // namespace rdx

#endif  // RDX_CORE_QUERY_H_
