#include "core/quotient.h"

#include "base/strings.h"

namespace rdx {
namespace {

// Recursively assigns each null to an existing block or a new block
// (restricted-growth enumeration of set partitions), then maps each block
// to "stay null" or to one of the constants.
struct QuotientEnumerator {
  const std::vector<Value>& nulls;
  const std::vector<Value>& constants;
  const Instance& instance;
  uint64_t max_quotients;
  std::vector<Instance>* out;

  std::vector<uint32_t> block_of;  // block index per null

  Status AssignBlocks(std::size_t index) {
    if (index == nulls.size()) {
      return AssignBlockTargets();
    }
    uint32_t max_block = 0;
    for (uint32_t b : block_of) max_block = std::max(max_block, b + 1);
    for (uint32_t b = 0; b <= max_block; ++b) {
      block_of.push_back(b);
      RDX_RETURN_IF_ERROR(AssignBlocks(index + 1));
      block_of.pop_back();
    }
    return Status::OK();
  }

  Status AssignBlockTargets() {
    uint32_t num_blocks = 0;
    for (uint32_t b : block_of) num_blocks = std::max(num_blocks, b + 1);
    // For each block: choice 0 = stay null (representative = first null of
    // the block), choices 1..constants.size() = that constant.
    std::vector<uint32_t> choice(num_blocks, 0);
    while (true) {
      EmitQuotient(choice);
      if (static_cast<uint64_t>(out->size()) > max_quotients) {
        return Status::ResourceExhausted(
            StrCat("quotient enumeration exceeded ", max_quotients));
      }
      // Odometer over choices.
      std::size_t pos = 0;
      while (pos < choice.size()) {
        if (++choice[pos] <= constants.size()) break;
        choice[pos] = 0;
        ++pos;
      }
      if (pos == choice.size()) break;
    }
    return Status::OK();
  }

  void EmitQuotient(const std::vector<uint32_t>& choice) {
    ValueMap h;
    // Representative of each stay-null block: its first null.
    std::vector<Value> representative(choice.size(), Value());
    std::vector<bool> has_representative(choice.size(), false);
    for (std::size_t i = 0; i < nulls.size(); ++i) {
      uint32_t b = block_of[i];
      if (choice[b] == 0) {
        if (!has_representative[b]) {
          representative[b] = nulls[i];
          has_representative[b] = true;
        }
        h.emplace(nulls[i], representative[b]);
      } else {
        h.emplace(nulls[i], constants[choice[b] - 1]);
      }
    }
    out->push_back(instance.Apply(h));
  }
};

}  // namespace

Result<std::vector<Instance>> EnumerateNullQuotients(
    const Instance& instance, uint64_t max_quotients) {
  std::vector<Value> nulls = instance.Nulls();
  std::vector<Value> constants;
  for (const Value& v : instance.ActiveDomain()) {
    if (v.IsConstant()) constants.push_back(v);
  }
  std::vector<Instance> out;
  if (nulls.empty()) {
    out.push_back(instance);
    return out;
  }
  QuotientEnumerator enumerator{nulls, constants, instance, max_quotients,
                                &out, {}};
  RDX_RETURN_IF_ERROR(enumerator.AssignBlocks(0));
  // The identity quotient (all blocks singleton, all stay null) is the
  // first emitted: block assignment {0,1,2,...} is... the first restricted
  // growth string is all-zeros (single block), not identity. Reorder so
  // the identity image (equal to the input) is first for caller ergonomics.
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] == instance) {
      std::swap(out[0], out[i]);
      break;
    }
  }
  return out;
}

}  // namespace rdx
