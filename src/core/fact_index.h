#ifndef RDX_CORE_FACT_INDEX_H_
#define RDX_CORE_FACT_INDEX_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/instance.h"

namespace rdx {

/// Sentinel fact ordinal ("no fact"); see FactIndex::ordinals.
inline constexpr uint32_t kNoFactOrdinal = 0xFFFFFFFFu;

/// Tombstone overlay for an indexed instance: marks facts as dead without
/// touching the instance or its FactIndex. The masked homomorphism search
/// treats dead facts as absent from the target, which is what lets the
/// core engine express "instance minus this fact" without the per-attempt
/// deep copy and index rebuild (see docs/core.md).
///
/// Facts are identified by their ordinal: the position of the fact in the
/// indexed instance's (append-stable) insertion order, as recorded by
/// FactIndex. The mask is a dense bitset over those ordinals, so alive()
/// is a single word probe — the masked search pays no hashing at all.
/// Kills are permanent for the mask's lifetime — the core retraction loop
/// only ever shrinks, and the memoization soundness argument relies on the
/// target never growing back.
class FactMask {
 public:
  bool alive(uint32_t ordinal) const {
    const std::size_t word = ordinal >> 6;
    return word >= bits_.size() ||
           (bits_[word] & (uint64_t{1} << (ordinal & 63))) == 0;
  }
  void Kill(uint32_t ordinal) {
    const std::size_t word = ordinal >> 6;
    if (word >= bits_.size()) bits_.resize(word + 1, 0);
    const uint64_t bit = uint64_t{1} << (ordinal & 63);
    if ((bits_[word] & bit) == 0) {
      bits_[word] |= bit;
      ++dead_;
    }
  }
  std::size_t dead_count() const { return dead_; }

 private:
  std::vector<uint64_t> bits_;
  std::size_t dead_ = 0;
};

/// Index over an instance's facts, stored struct-of-arrays: per relation,
/// one contiguous uint32 column of packed value ids (Value::PackedId) per
/// argument position, plus per-(position, value-id) posting lists of row
/// numbers. Candidate filtering during homomorphism search and dependency
/// matching walks these uint32 columns instead of chasing Fact pointers.
///
/// The index holds references into the indexed instance; the instance must
/// outlive the index. Instance fact storage is append-stable (deque), so
/// the index stays valid across AddFact calls; newly appended facts can be
/// folded in incrementally with Add() (the chase does this after each
/// firing instead of rebuilding). RemoveFact invalidates the index.
class FactIndex {
 public:
  /// One relation's struct-of-arrays store. Rows are in insertion order;
  /// row r of relation R is the r-th R-fact added to the index.
  struct RelStore {
    Relation relation;
    uint32_t arity = 0;
    /// Column-major cells: cols[pos][row] is Value::PackedId of argument
    /// `pos` of row `row`. Contiguous per position for scan locality.
    std::vector<std::vector<uint32_t>> cols;
    /// row -> pointer into the indexed instance's fact storage.
    std::vector<const Fact*> facts;
    /// row -> index-wide fact ordinal (position in insertion order across
    /// all relations; the FactMask key space).
    std::vector<uint32_t> ordinals;
    /// postings[pos][vid] = rows with packed value id `vid` at position
    /// `pos`, in insertion order.
    std::vector<std::unordered_map<uint32_t, std::vector<uint32_t>>> postings;

    std::size_t rows() const { return facts.size(); }

    /// Rows with packed id `vid` at position `pos`, or nullptr if none.
    const std::vector<uint32_t>* RowsWith(std::size_t pos,
                                          uint32_t vid) const {
      auto it = postings[pos].find(vid);
      return it == postings[pos].end() ? nullptr : &it->second;
    }
  };

  explicit FactIndex(const Instance& instance);

  /// Adds one fact (a reference into the indexed instance's storage) to
  /// the index. Its ordinal is the number of facts added before it.
  void Add(const Fact* fact);

  /// The store for relation `r`, or nullptr if no fact of `r` is indexed.
  const RelStore* StoreOf(Relation r) const {
    auto it = by_relation_.find(r.id());
    return it == by_relation_.end() ? nullptr : it->second;
  }

  /// Facts of relation `r` in insertion order, or nullptr if none.
  const std::vector<const Fact*>* FactsOf(Relation r) const {
    const RelStore* store = StoreOf(r);
    return store == nullptr ? nullptr : &store->facts;
  }

  /// Rows of relation `r` with value `v` at position `pos`, or nullptr if
  /// none (row numbers are per-relation; see RelStore).
  const std::vector<uint32_t>* RowsWith(Relation r, std::size_t pos,
                                        const Value& v) const {
    const RelStore* store = StoreOf(r);
    return store == nullptr ? nullptr : store->RowsWith(pos, v.PackedId());
  }

  /// Total facts indexed (== one past the largest assigned ordinal).
  std::size_t size() const { return all_facts_.size(); }

  /// The fact with ordinal `ordinal`.
  const Fact* FactAt(uint32_t ordinal) const { return all_facts_[ordinal]; }

 private:
  std::vector<std::unique_ptr<RelStore>> stores_;  // stable addresses
  std::unordered_map<uint32_t, RelStore*> by_relation_;
  std::vector<const Fact*> all_facts_;  // ordinal -> fact
  /// Batch-build only: relation id -> row count, set by the constructor so
  /// Add can size new stores up front (null during incremental use).
  const std::unordered_map<uint32_t, uint32_t>* reserve_hint_ = nullptr;
};

}  // namespace rdx

#endif  // RDX_CORE_FACT_INDEX_H_
