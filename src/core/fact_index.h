#ifndef RDX_CORE_FACT_INDEX_H_
#define RDX_CORE_FACT_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/instance.h"

namespace rdx {

/// Tombstone overlay for an indexed instance: marks facts as dead without
/// touching the instance or its FactIndex. The masked homomorphism search
/// treats dead facts as absent from the target, which is what lets the
/// core engine express "instance minus this fact" without the per-attempt
/// deep copy and index rebuild (see docs/core.md).
///
/// Pointers must reference the masked instance's (append-stable) fact
/// storage. Kills are permanent for the mask's lifetime — the core
/// retraction loop only ever shrinks, and the memoization soundness
/// argument relies on the target never growing back.
class FactMask {
 public:
  bool alive(const Fact* fact) const { return dead_.count(fact) == 0; }
  void Kill(const Fact* fact) { dead_.insert(fact); }
  std::size_t dead_count() const { return dead_.size(); }

 private:
  std::unordered_set<const Fact*> dead_;
};

/// Index over an instance's facts: per-relation fact lists plus a
/// (relation, position, value) -> fact-list index used to filter candidate
/// facts during homomorphism search and dependency matching.
///
/// The index holds references into the indexed instance; the instance must
/// outlive the index. Instance fact storage is append-stable (deque), so
/// the index stays valid across AddFact calls; newly appended facts can be
/// folded in incrementally with Add() (the chase does this after each
/// firing instead of rebuilding). RemoveFact invalidates the index.
class FactIndex {
 public:
  explicit FactIndex(const Instance& instance);

  /// Adds one fact (a reference into the indexed instance's storage) to
  /// the index.
  void Add(const Fact* fact);

  /// Facts of relation `r`, or nullptr if none.
  const std::vector<const Fact*>* FactsOf(Relation r) const;

  /// Facts of relation `r` with value `v` at position `pos`, or nullptr if
  /// none.
  const std::vector<const Fact*>* FactsWith(Relation r, std::size_t pos,
                                            const Value& v) const;

 private:
  struct Key {
    uint32_t relation;
    uint32_t pos;
    Value value;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };

  std::unordered_map<Relation, std::vector<const Fact*>> facts_by_relation_;
  std::unordered_map<Key, std::vector<const Fact*>, KeyHash>
      by_position_value_;
};

}  // namespace rdx

#endif  // RDX_CORE_FACT_INDEX_H_
