#ifndef RDX_CORE_BLOCKS_H_
#define RDX_CORE_BLOCKS_H_

#include <cstdint>
#include <vector>

#include "core/instance.h"

namespace rdx {

/// Decomposition of an instance into its ground facts and its null-blocks:
/// the connected components of the Gaifman graph whose vertices are the
/// non-ground facts and whose edges join facts sharing a labeled null
/// (Fagin–Kolaitis–Popa, "Data exchange: getting to the core").
///
/// Because the blocks partition the nulls, every endomorphism of the
/// instance that fixes constants decomposes into one independent
/// homomorphism per block — which is what lets the core engine retract
/// blockwise instead of searching over the whole instance
/// (see docs/core.md).
///
/// Fact pointers reference the decomposed instance's storage; the instance
/// must outlive the decomposition. Ordering is deterministic: ground facts
/// and the facts within each block keep instance insertion order, and
/// blocks are ordered by their lowest fact index.
struct BlockDecomposition {
  std::vector<const Fact*> ground;
  std::vector<std::vector<const Fact*>> blocks;
};

/// Computes the block decomposition of `instance` in
/// O(facts · arity · α) time via union-find over the nulls.
BlockDecomposition DecomposeIntoBlocks(const Instance& instance);

/// Order-insensitive fingerprint of a set of facts (XOR of fact hashes,
/// like Instance::Hash). The core engine stamps each block's residue with
/// this for trace output; equal residues always fingerprint equal.
uint64_t BlockFingerprint(const std::vector<const Fact*>& facts);

}  // namespace rdx

#endif  // RDX_CORE_BLOCKS_H_
