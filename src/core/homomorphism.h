#ifndef RDX_CORE_HOMOMORPHISM_H_
#define RDX_CORE_HOMOMORPHISM_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "base/status.h"
#include "core/fact_index.h"
#include "core/instance.h"

namespace rdx {

/// Observability stats for the backtracking homomorphism search.
/// Accumulated (+=) across calls so one struct can cover a whole phase
/// (e.g. every search performed by one ComputeCore); also mirrored into
/// the process-wide "hom.*" counters.
struct HomomorphismStats {
  uint64_t searches = 0;             // FindHomomorphism calls
  uint64_t steps = 0;                // backtracking nodes expanded
  uint64_t candidate_pairs = 0;      // (source fact, target fact) unifications tried
  uint64_t backtracks = 0;           // bindings rolled back
  uint64_t domain_filter_prunes = 0; // searches refuted by the arc-consistency filter
  uint64_t found = 0;                // searches that found a homomorphism
  uint64_t micros = 0;
};

/// Tuning knobs for the homomorphism search.
struct HomomorphismOptions {
  /// Backtracking-node budget; exceeded => ResourceExhausted. The default
  /// is far above anything the test/bench workloads need.
  uint64_t max_steps = 50'000'000;

  /// Require h to be injective on the source's active domain (no two
  /// values share an image). Used by isomorphism checking.
  bool injective = false;

  /// Require nulls to map to nulls (h restricted to Var). Used by
  /// isomorphism checking, where the inverse must also fix constants.
  bool nulls_to_nulls = false;

  /// Arc-consistency-style preprocessing: before the backtracking search,
  /// intersect each source null's candidate set across all (fact,
  /// position) occurrences; an empty domain refutes without search.
  /// Semantically transparent. Default OFF: the E2 ablation benchmark
  /// measured the indexed most-constrained-first search refuting typical
  /// negatives faster than the filter's O(|from|·candidates) setup cost
  /// (see EXPERIMENTS.md); enable for workloads with large, globally
  /// unsatisfiable inputs.
  bool use_domain_filter = false;

  /// Threads used by the callers that race independent searches —
  /// ComputeCore / IsCore retraction attempts and the mapping-level
  /// inverse checks. FindHomomorphism itself is always single-threaded;
  /// it ignores this field. The raced winner is always the one the
  /// sequential order would find first, so results are identical for
  /// every value. 1 = the plain sequential code path. See
  /// docs/parallelism.md.
  uint64_t num_threads = 1;

  /// Optional per-run stats accumulator (not owned; may be null). The
  /// pointed-to struct is incremented, never reset, by each search run
  /// with these options.
  HomomorphismStats* stats = nullptr;
};

/// Searches for a homomorphism h : from → to (Definition 3.1): h fixes all
/// constants and maps each fact of `from` to a fact of `to`.
///
/// `seed` optionally pre-binds some nulls of `from`; the returned map (if
/// any) extends it. The returned map binds exactly the nulls occurring in
/// `from` (plus the seed); constants are implicitly fixed.
///
/// Returns nullopt when no homomorphism exists, and ResourceExhausted when
/// the step budget runs out.
Result<std::optional<ValueMap>> FindHomomorphism(
    const Instance& from, const Instance& to, const ValueMap& seed = {},
    const HomomorphismOptions& options = {});

/// FindHomomorphism with a caller-owned index over `to`. The plain
/// overload builds a fresh FactIndex on every call; loops that probe many
/// sources against one stable target (the chase/core engines, the
/// information-loss pair scans) build the index once and pass it here.
/// `to_index` must index exactly `to` and both must outlive the call.
Result<std::optional<ValueMap>> FindHomomorphism(
    const Instance& from, const Instance& to, const FactIndex& to_index,
    const ValueMap& seed = {}, const HomomorphismOptions& options = {});

/// Masked-target search: looks for a homomorphism from the explicit fact
/// set `from_facts` into the indexed instance restricted to the facts
/// alive in `mask` (if non-null) and distinct from the fact with index
/// ordinal `excluded` (pass kNoFactOrdinal to exclude nothing). This is
/// the copy-free retraction primitive of the core engine: "can this block
/// map into the instance with fact f masked out" without materializing
/// the sub-instance or rebuilding its index.
///
/// The domain-filter preprocessing pass is not applied here (it needs the
/// target in instance form); everything else behaves like
/// FindHomomorphism, including stats publication under "hom.*".
Result<std::optional<ValueMap>> FindHomomorphismMasked(
    const std::vector<const Fact*>& from_facts, const FactIndex& to_index,
    const FactMask* mask, uint32_t excluded = kNoFactOrdinal,
    const HomomorphismOptions& options = {});

/// Decides `from → to` (the paper's binary relation →).
Result<bool> HasHomomorphism(const Instance& from, const Instance& to,
                             const HomomorphismOptions& options = {});

/// Decides homomorphic equivalence: from → to and to → from.
Result<bool> AreHomEquivalent(const Instance& a, const Instance& b,
                              const HomomorphismOptions& options = {});

/// Decides isomorphism: a bijective homomorphism whose inverse is also a
/// homomorphism, i.e. an injective, null-to-null homomorphism between
/// instances of equal size. Strictly finer than homomorphic equivalence
/// (e.g. {P(?X,?X)} and {P(?X,?X), P(?X,?Y)} are hom-equivalent but not
/// isomorphic). Useful for asserting that two constructions agree up to
/// renaming of nulls.
Result<bool> AreIsomorphic(const Instance& a, const Instance& b,
                           const HomomorphismOptions& options = {});

}  // namespace rdx

#endif  // RDX_CORE_HOMOMORPHISM_H_
