#include "core/fact_index.h"

#include "base/hash.h"

namespace rdx {

std::size_t FactIndex::KeyHash::operator()(const Key& k) const {
  std::size_t seed = std::hash<uint32_t>()(k.relation);
  HashCombine(seed, k.pos);
  HashCombine(seed, k.value.Hash());
  return seed;
}

FactIndex::FactIndex(const Instance& instance) {
  for (const Fact& f : instance.facts()) {
    Add(&f);
  }
}

void FactIndex::Add(const Fact* fact) {
  facts_by_relation_[fact->relation()].push_back(fact);
  for (std::size_t i = 0; i < fact->args().size(); ++i) {
    by_position_value_[Key{fact->relation().id(), static_cast<uint32_t>(i),
                           fact->args()[i]}]
        .push_back(fact);
  }
}

const std::vector<const Fact*>* FactIndex::FactsOf(Relation r) const {
  auto it = facts_by_relation_.find(r);
  return it == facts_by_relation_.end() ? nullptr : &it->second;
}

const std::vector<const Fact*>* FactIndex::FactsWith(Relation r,
                                                     std::size_t pos,
                                                     const Value& v) const {
  auto it = by_position_value_.find(
      Key{r.id(), static_cast<uint32_t>(pos), v});
  return it == by_position_value_.end() ? nullptr : &it->second;
}

}  // namespace rdx
