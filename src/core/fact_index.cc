#include "core/fact_index.h"

namespace rdx {

FactIndex::FactIndex(const Instance& instance) {
  // Batch build: count rows per relation first so every store's columns
  // and posting maps are sized once. The reserve kills the vector-regrowth
  // and hash-rehash churn that otherwise dominates small index builds
  // (setup-bound callers like failed homomorphism checks feel it most).
  all_facts_.reserve(instance.size());
  std::unordered_map<uint32_t, uint32_t> rows_of;
  for (const Fact& f : instance.facts()) {
    ++rows_of[f.relation().id()];
  }
  reserve_hint_ = &rows_of;
  for (const Fact& f : instance.facts()) {
    Add(&f);
  }
  reserve_hint_ = nullptr;
}

void FactIndex::Add(const Fact* fact) {
  RelStore* store;
  auto it = by_relation_.find(fact->relation().id());
  if (it != by_relation_.end()) {
    store = it->second;
  } else {
    stores_.push_back(std::make_unique<RelStore>());
    store = stores_.back().get();
    store->relation = fact->relation();
    store->arity = static_cast<uint32_t>(fact->args().size());
    store->cols.resize(store->arity);
    store->postings.resize(store->arity);
    if (reserve_hint_ != nullptr) {
      auto hint = reserve_hint_->find(fact->relation().id());
      if (hint != reserve_hint_->end()) {
        const uint32_t n = hint->second;
        store->facts.reserve(n);
        store->ordinals.reserve(n);
        for (uint32_t pos = 0; pos < store->arity; ++pos) {
          store->cols[pos].reserve(n);
          store->postings[pos].reserve(n);
        }
      }
    }
    by_relation_.emplace(fact->relation().id(), store);
  }
  const uint32_t row = static_cast<uint32_t>(store->rows());
  const uint32_t ordinal = static_cast<uint32_t>(all_facts_.size());
  all_facts_.push_back(fact);
  store->facts.push_back(fact);
  store->ordinals.push_back(ordinal);
  const std::vector<Value>& args = fact->args();
  for (std::size_t pos = 0; pos < args.size(); ++pos) {
    const uint32_t vid = args[pos].PackedId();
    store->cols[pos].push_back(vid);
    store->postings[pos][vid].push_back(row);
  }
}

}  // namespace rdx
