#ifndef RDX_CORE_FACT_H_
#define RDX_CORE_FACT_H_

#include <compare>
#include <functional>
#include <string>
#include <vector>

#include "base/status.h"
#include "core/schema.h"
#include "core/value.h"

namespace rdx {

/// A single tuple in a relation: R(v1, ..., vk). The argument count must
/// match the relation's arity; Make() enforces this.
class Fact {
 public:
  Fact() : hash_(ComputeHash()) {}

  /// Builds a fact, validating that |args| equals the relation's arity.
  static Result<Fact> Make(Relation relation, std::vector<Value> args);

  /// Like Make but aborts on arity mismatch; for literals in tests.
  static Fact MustMake(Relation relation, std::vector<Value> args);

  Relation relation() const { return relation_; }
  const std::vector<Value>& args() const { return args_; }
  std::size_t arity() const { return args_.size(); }

  /// True if every argument is a constant.
  bool IsGround() const;

  /// "R(a, ?X)" rendering.
  std::string ToString() const;

  friend bool operator==(const Fact& a, const Fact& b) {
    return a.relation_ == b.relation_ && a.args_ == b.args_;
  }
  friend std::strong_ordering operator<=>(const Fact& a, const Fact& b);

  /// Cached at construction: facts are immutable, and the chase/core
  /// engines hash every fact repeatedly (dedup set probes, fold lookups).
  std::size_t Hash() const { return hash_; }

 private:
  Fact(Relation relation, std::vector<Value> args)
      : relation_(relation), args_(std::move(args)), hash_(ComputeHash()) {}

  std::size_t ComputeHash() const;

  Relation relation_;
  std::vector<Value> args_;
  std::size_t hash_ = 0;
};

struct FactHash {
  std::size_t operator()(const Fact& f) const { return f.Hash(); }
};

}  // namespace rdx

template <>
struct std::hash<rdx::Fact> {
  std::size_t operator()(const rdx::Fact& f) const { return f.Hash(); }
};

#endif  // RDX_CORE_FACT_H_
