#include "core/egd.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "base/strings.h"
#include "core/dependency_parser.h"

namespace rdx {

Result<Egd> Egd::Make(
    std::vector<Atom> body,
    std::vector<std::pair<Variable, Variable>> equalities) {
  std::vector<Variable> bound;
  bool has_relational = false;
  for (const Atom& a : body) {
    if (!a.IsRelational()) continue;
    has_relational = true;
    for (Variable v : a.Vars()) {
      if (std::find(bound.begin(), bound.end(), v) == bound.end()) {
        bound.push_back(v);
      }
    }
  }
  if (!has_relational) {
    return Status::InvalidArgument(
        "egd body must contain a relational atom");
  }
  if (equalities.empty()) {
    return Status::InvalidArgument("egd must equate at least one pair");
  }
  for (const auto& [a, b] : equalities) {
    for (Variable v : {a, b}) {
      if (std::find(bound.begin(), bound.end(), v) == bound.end()) {
        return Status::InvalidArgument(
            StrCat("equated variable '", v.name(),
                   "' does not occur in a relational body atom"));
      }
    }
  }
  return Egd(std::move(body), std::move(equalities));
}

Result<Egd> Egd::Parse(std::string_view text) {
  std::size_t arrow = text.find("->");
  if (arrow == std::string_view::npos) {
    return Status::InvalidArgument("egd must contain '->'");
  }
  // Parse the body by reusing the dependency parser with a placeholder
  // head over a reserved relation (arity 1, variable taken from the
  // first equality).
  std::string_view head_text = text.substr(arrow + 2);
  // Split head on '&' into "a = b" pieces.
  std::vector<std::pair<Variable, Variable>> equalities;
  std::size_t start = 0;
  std::string head(head_text);
  while (start <= head.size()) {
    std::size_t amp = head.find('&', start);
    std::string piece = head.substr(
        start, amp == std::string::npos ? std::string::npos : amp - start);
    // Trim.
    auto trim = [](std::string s) {
      while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
        s.erase(s.begin());
      while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
        s.pop_back();
      return s;
    };
    piece = trim(piece);
    if (!piece.empty()) {
      std::size_t eq = piece.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument(
            StrCat("egd head piece '", piece, "' must be 'var = var'"));
      }
      std::string lhs = trim(piece.substr(0, eq));
      std::string rhs = trim(piece.substr(eq + 1));
      if (!IsIdentifier(lhs) || !IsIdentifier(rhs)) {
        return Status::InvalidArgument(
            StrCat("egd equality must be between variables: '", piece, "'"));
      }
      equalities.emplace_back(Variable::Intern(lhs), Variable::Intern(rhs));
    }
    if (amp == std::string::npos) break;
    start = amp + 1;
  }
  if (equalities.empty()) {
    return Status::InvalidArgument("egd head has no equalities");
  }

  // Body: reuse the dependency parser with a synthetic head mentioning
  // one equated variable.
  std::string rewritten =
      StrCat(std::string(text.substr(0, arrow)), " -> RdxEgdHead(",
             equalities[0].first.name(), ")");
  RDX_ASSIGN_OR_RETURN(Dependency dep, ParseDependency(rewritten));
  return Make(dep.body(), std::move(equalities));
}

Egd Egd::MustParse(std::string_view text) {
  Result<Egd> e = Parse(text);
  if (!e.ok()) {
    std::fprintf(stderr, "Egd::MustParse(\"%.*s\"): %s\n",
                 static_cast<int>(text.size()), text.data(),
                 e.status().ToString().c_str());
    std::abort();
  }
  return *std::move(e);
}

std::string Egd::ToString() const {
  return StrCat(AtomsToString(body_), " -> ",
                JoinMapped(equalities_, " & ",
                           [](const std::pair<Variable, Variable>& e) {
                             return StrCat(e.first.name(), " = ",
                                           e.second.name());
                           }));
}

}  // namespace rdx
