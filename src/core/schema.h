#ifndef RDX_CORE_SCHEMA_H_
#define RDX_CORE_SCHEMA_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/status.h"

namespace rdx {

/// An interned relation symbol with a fixed arity. Relation symbols live in
/// a process-wide registry keyed by name; interning the same name twice
/// with different arities is an error surfaced by the Intern factory.
class Relation {
 public:
  Relation() : id_(0) {}

  /// Interns (or retrieves) the relation symbol `name` with `arity`.
  /// Fails with InvalidArgument if `name` was previously interned with a
  /// different arity, or if `name` is not a valid identifier.
  static Result<Relation> Intern(std::string_view name, uint32_t arity);

  /// Like Intern but aborts on error; for literals in tests and examples.
  static Relation MustIntern(std::string_view name, uint32_t arity);

  /// Looks up a previously interned relation by name.
  static Result<Relation> Lookup(std::string_view name);

  uint32_t id() const { return id_; }
  const std::string& name() const;
  uint32_t arity() const;

  friend bool operator==(const Relation& a, const Relation& b) {
    return a.id_ == b.id_;
  }
  friend auto operator<=>(const Relation& a, const Relation& b) {
    return a.id_ <=> b.id_;
  }

 private:
  explicit Relation(uint32_t id) : id_(id) {}
  uint32_t id_;
};

struct RelationHash {
  std::size_t operator()(const Relation& r) const {
    return std::hash<uint32_t>()(r.id());
  }
};

/// A finite sequence of relation symbols (the paper's schema R).
/// Schemas are value types; copying is cheap (vector of 4-byte ids).
class Schema {
 public:
  Schema() = default;

  /// Builds a schema from (name, arity) pairs. Fails on duplicate names or
  /// arity clashes with previously interned symbols.
  static Result<Schema> Make(
      const std::vector<std::pair<std::string, uint32_t>>& relations);

  /// Like Make but aborts on error; for literals in tests and examples.
  static Schema MustMake(
      const std::vector<std::pair<std::string, uint32_t>>& relations);

  /// Adds `relation` to the schema. Fails if already present.
  Status AddRelation(Relation relation);

  bool Contains(Relation relation) const;
  const std::vector<Relation>& relations() const { return relations_; }
  std::size_t size() const { return relations_.size(); }

  /// True if no relation symbol occurs in both this schema and `other`
  /// (source and target schemas of a mapping must be disjoint).
  bool DisjointFrom(const Schema& other) const;

  /// Union of the two schemas (for instances over combined schemas).
  static Schema Union(const Schema& a, const Schema& b);

  /// "{P/2, Q/1}" style rendering, in insertion order.
  std::string ToString() const;

 private:
  std::vector<Relation> relations_;
};

}  // namespace rdx

template <>
struct std::hash<rdx::Relation> {
  std::size_t operator()(const rdx::Relation& r) const {
    return std::hash<uint32_t>()(r.id());
  }
};

#endif  // RDX_CORE_SCHEMA_H_
