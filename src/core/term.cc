#include "core/term.h"

#include <cassert>
#include <mutex>
#include <vector>

#include "base/strings.h"

namespace rdx {
namespace {

struct VariableTables {
  std::mutex mu;
  std::vector<std::string> names;
  std::unordered_map<std::string, uint32_t> ids;
};

VariableTables& Tables() {
  static VariableTables& tables = *new VariableTables();
  return tables;
}

}  // namespace

Variable Variable::Intern(std::string_view name) {
  VariableTables& t = Tables();
  std::lock_guard<std::mutex> lock(t.mu);
  std::string key(name);
  auto it = t.ids.find(key);
  if (it != t.ids.end()) return Variable(it->second);
  uint32_t id = static_cast<uint32_t>(t.names.size());
  t.names.push_back(key);
  t.ids.emplace(std::move(key), id);
  return Variable(id);
}

Variable Variable::Fresh() {
  VariableTables& t = Tables();
  std::lock_guard<std::mutex> lock(t.mu);
  uint32_t id = static_cast<uint32_t>(t.names.size());
  std::string label = StrCat("v", id);
  while (t.ids.count(label) > 0) {
    label += "_";
  }
  t.names.push_back(label);
  t.ids.emplace(std::move(label), id);
  return Variable(id);
}

std::string Variable::name() const {
  VariableTables& t = Tables();
  std::lock_guard<std::mutex> lock(t.mu);
  assert(id_ < t.names.size());
  return t.names[id_];
}

std::string Term::ToString() const {
  if (IsVariable()) return variable_.name();
  // Render constants in dependency syntax: numbers bare, names quoted.
  std::string name = constant_.name();
  bool numeric = !name.empty();
  for (char c : name) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      numeric = false;
      break;
    }
  }
  if (numeric) return name;
  return StrCat("'", name, "'");
}

}  // namespace rdx
