#include "core/fact.h"

#include <cstdlib>

#include "base/hash.h"
#include "base/strings.h"

namespace rdx {

Result<Fact> Fact::Make(Relation relation, std::vector<Value> args) {
  if (args.size() != relation.arity()) {
    return Status::InvalidArgument(
        StrCat("fact over '", relation.name(), "' has ", args.size(),
               " arguments, expected ", relation.arity()));
  }
  return Fact(relation, std::move(args));
}

Fact Fact::MustMake(Relation relation, std::vector<Value> args) {
  Result<Fact> f = Make(relation, std::move(args));
  if (!f.ok()) {
    std::abort();
  }
  return *std::move(f);
}

bool Fact::IsGround() const {
  for (const Value& v : args_) {
    if (v.IsNull()) return false;
  }
  return true;
}

std::string Fact::ToString() const {
  return StrCat(relation_.name(), "(",
                JoinMapped(args_, ", ", [](const Value& v) {
                  return v.ToString();
                }),
                ")");
}

std::strong_ordering operator<=>(const Fact& a, const Fact& b) {
  if (a.relation_ != b.relation_) return a.relation_.id() <=> b.relation_.id();
  return a.args_ <=> b.args_;
}

std::size_t Fact::ComputeHash() const {
  std::size_t seed = std::hash<uint32_t>()(relation_.id());
  for (const Value& v : args_) {
    HashCombine(seed, v.Hash());
  }
  return seed;
}

}  // namespace rdx
