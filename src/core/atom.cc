#include "core/atom.h"

#include <algorithm>
#include <cstdlib>

#include "base/strings.h"

namespace rdx {

Result<Atom> Atom::Relational(Relation relation, std::vector<Term> terms) {
  if (terms.size() != relation.arity()) {
    return Status::InvalidArgument(
        StrCat("atom over '", relation.name(), "' has ", terms.size(),
               " terms, expected ", relation.arity()));
  }
  return Atom(Kind::kRelational, relation, std::move(terms));
}

Atom Atom::MustRelational(Relation relation, std::vector<Term> terms) {
  Result<Atom> a = Relational(relation, std::move(terms));
  if (!a.ok()) {
    std::abort();
  }
  return *std::move(a);
}

Atom Atom::Inequality(Term lhs, Term rhs) {
  return Atom(Kind::kInequality, Relation(), {lhs, rhs});
}

Atom Atom::IsConstant(Term term) {
  return Atom(Kind::kIsConstant, Relation(), {term});
}

std::vector<Variable> Atom::Vars() const {
  std::vector<Variable> out;
  for (const Term& t : terms_) {
    if (t.IsVariable() &&
        std::find(out.begin(), out.end(), t.variable()) == out.end()) {
      out.push_back(t.variable());
    }
  }
  return out;
}

namespace {

Result<Value> EvalTerm(const Term& term, const Assignment& assignment) {
  if (term.IsConstant()) return term.constant();
  auto it = assignment.find(term.variable());
  if (it == assignment.end()) {
    return Status::InvalidArgument(
        StrCat("unbound variable '", term.variable().name(), "'"));
  }
  return it->second;
}

}  // namespace

Result<Fact> Atom::Ground(const Assignment& assignment) const {
  if (kind_ != Kind::kRelational) {
    return Status::InvalidArgument("cannot ground a builtin atom to a fact");
  }
  std::vector<Value> args;
  args.reserve(terms_.size());
  for (const Term& t : terms_) {
    RDX_ASSIGN_OR_RETURN(Value v, EvalTerm(t, assignment));
    args.push_back(v);
  }
  return Fact::Make(relation_, std::move(args));
}

Result<bool> Atom::EvalBuiltin(const Assignment& assignment) const {
  switch (kind_) {
    case Kind::kRelational:
      return Status::InvalidArgument(
          "EvalBuiltin called on a relational atom");
    case Kind::kInequality: {
      RDX_ASSIGN_OR_RETURN(Value a, EvalTerm(terms_[0], assignment));
      RDX_ASSIGN_OR_RETURN(Value b, EvalTerm(terms_[1], assignment));
      return !(a == b);
    }
    case Kind::kIsConstant: {
      RDX_ASSIGN_OR_RETURN(Value v, EvalTerm(terms_[0], assignment));
      return v.IsConstant();
    }
  }
  return Status::Internal("unknown atom kind");
}

std::string Atom::ToString() const {
  switch (kind_) {
    case Kind::kRelational:
      return StrCat(relation_.name(), "(",
                    JoinMapped(terms_, ", ",
                               [](const Term& t) { return t.ToString(); }),
                    ")");
    case Kind::kInequality:
      return StrCat(terms_[0].ToString(), " != ", terms_[1].ToString());
    case Kind::kIsConstant:
      return StrCat("Constant(", terms_[0].ToString(), ")");
  }
  return "<invalid atom>";
}

std::string AtomsToString(const std::vector<Atom>& atoms) {
  return JoinMapped(atoms, " & ",
                    [](const Atom& a) { return a.ToString(); });
}

std::vector<Variable> VarsOf(const std::vector<Atom>& atoms) {
  std::vector<Variable> out;
  for (const Atom& a : atoms) {
    for (Variable v : a.Vars()) {
      if (std::find(out.begin(), out.end(), v) == out.end()) {
        out.push_back(v);
      }
    }
  }
  return out;
}

}  // namespace rdx
