#include "core/dependency_parser.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "base/strings.h"

namespace rdx {
namespace {

bool IsAllDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Dependency> ParseOne() {
    RDX_ASSIGN_OR_RETURN(Dependency dep, ParseDependencyBody());
    SkipSpace();
    if (!AtEnd()) {
      return Status::InvalidArgument(
          StrCat("trailing input at ", Where(pos_), " in dependency text"));
    }
    return dep;
  }

  Result<std::vector<Dependency>> ParseMany() {
    std::vector<Dependency> out;
    SkipSpace();
    while (!AtEnd()) {
      RDX_ASSIGN_OR_RETURN(Dependency dep, ParseDependencyBody());
      out.push_back(std::move(dep));
      SkipSpace();
      if (!AtEnd()) {
        if (Peek() != ';') {
          return Status::InvalidArgument(
              StrCat("expected ';' between dependencies at ", Where(pos_)));
        }
        ++pos_;
        SkipSpace();
      }
    }
    if (out.empty()) {
      return Status::InvalidArgument("no dependencies in input");
    }
    return out;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool PeekIs(char c) const { return !AtEnd() && Peek() == c; }

  // 1-based line/column of a text offset, for error messages and the
  // SourceLocation recorded on each parsed dependency.
  SourceLocation LocationAt(std::size_t pos) const {
    SourceLocation loc{1, 1};
    for (std::size_t i = 0; i < pos && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++loc.line;
        loc.column = 1;
      } else {
        ++loc.column;
      }
    }
    return loc;
  }

  std::string Where(std::size_t pos) const { return LocationAt(pos).ToString(); }

  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  bool ConsumeToken(std::string_view token) {
    SkipSpace();
    if (text_.substr(pos_, token.size()) != token) return false;
    pos_ += token.size();
    return true;
  }

  Status Expect(char c) {
    SkipSpace();
    if (AtEnd() || Peek() != c) {
      return Status::InvalidArgument(
          StrCat("expected '", c, "' at ", Where(pos_), " in dependency text"));
    }
    ++pos_;
    return Status::OK();
  }

  Result<std::string> ParseIdentifier() {
    SkipSpace();
    std::size_t start = pos_;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      return Status::InvalidArgument(
          StrCat("expected identifier at ", Where(start),
                 " in dependency text"));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<Term> ParseTerm() {
    SkipSpace();
    if (PeekIs('\'')) {
      ++pos_;
      std::size_t start = pos_;
      while (!AtEnd() && Peek() != '\'') ++pos_;
      if (AtEnd()) {
        return Status::InvalidArgument(
            StrCat("unterminated quoted constant at ", Where(start)));
      }
      std::string name(text_.substr(start, pos_ - start));
      ++pos_;  // closing quote
      return Term::Const(Value::MakeConstant(name));
    }
    RDX_ASSIGN_OR_RETURN(std::string name, ParseIdentifier());
    if (IsAllDigits(name)) {
      return Term::Const(Value::MakeConstant(name));
    }
    return Term::Var(name);
  }

  // Parses a body atom: relational, `Constant(t)`, or `t != t'`.
  Result<Atom> ParseBodyAtom() {
    SkipSpace();
    std::size_t save = pos_;
    // Try `Constant(t)`.
    if (ConsumeToken("Constant")) {
      SkipSpace();
      if (PeekIs('(')) {
        ++pos_;
        RDX_ASSIGN_OR_RETURN(Term t, ParseTerm());
        RDX_RETURN_IF_ERROR(Expect(')'));
        return Atom::IsConstant(t);
      }
      pos_ = save;
    }
    // A term followed by '!=' is an inequality; otherwise it must be a
    // relational atom (identifier '(' ...).
    SkipSpace();
    if (PeekIs('\'')) {
      RDX_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
      if (!ConsumeToken("!=")) {
        return Status::InvalidArgument(
            StrCat("expected '!=' after constant at ", Where(pos_)));
      }
      RDX_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
      return Atom::Inequality(lhs, rhs);
    }
    RDX_ASSIGN_OR_RETURN(std::string ident, ParseIdentifier());
    SkipSpace();
    if (PeekIs('(')) {
      return ParseRelationalAtomArgs(ident);
    }
    // Inequality with a variable/number on the left.
    Term lhs = IsAllDigits(ident) ? Term::Const(Value::MakeConstant(ident))
                                  : Term::Var(ident);
    if (!ConsumeToken("!=")) {
      return Status::InvalidArgument(
          StrCat("expected '(' or '!=' after '", ident, "' at ", Where(pos_)));
    }
    RDX_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
    return Atom::Inequality(lhs, rhs);
  }

  Result<Atom> ParseRelationalAtomArgs(const std::string& rel_name) {
    RDX_RETURN_IF_ERROR(Expect('('));
    std::vector<Term> terms;
    while (true) {
      RDX_ASSIGN_OR_RETURN(Term t, ParseTerm());
      terms.push_back(t);
      SkipSpace();
      if (PeekIs(',')) {
        ++pos_;
        continue;
      }
      break;
    }
    RDX_RETURN_IF_ERROR(Expect(')'));
    RDX_ASSIGN_OR_RETURN(
        Relation rel,
        Relation::Intern(rel_name, static_cast<uint32_t>(terms.size())));
    return Atom::Relational(rel, std::move(terms));
  }

  Result<Atom> ParseHeadAtom() {
    RDX_ASSIGN_OR_RETURN(std::string ident, ParseIdentifier());
    return ParseRelationalAtomArgs(ident);
  }

  // True if the next non-space character sequence starts an atom separator.
  bool ConsumeAtomSeparator() {
    SkipSpace();
    if (PeekIs('&')) {
      ++pos_;
      return true;
    }
    if (PeekIs(',')) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::vector<Atom>> ParseDisjunct() {
    // Optional EXISTS prefix (the variable list is redundant — existential
    // variables are implicit — but accepted for readability). The declared
    // names are recorded on the dependency so lints can cross-check them
    // against the body (RDX002).
    std::size_t save = pos_;
    if (ConsumeToken("EXISTS") || ConsumeToken("exists")) {
      SkipSpace();
      // Require a variable list followed by ':'; otherwise treat EXISTS as
      // an identifier (unlikely) and rewind.
      bool ok = true;
      std::vector<std::string> names;
      while (true) {
        Result<std::string> var = ParseIdentifier();
        if (!var.ok()) {
          ok = false;
          break;
        }
        names.push_back(*std::move(var));
        SkipSpace();
        if (PeekIs(',')) {
          ++pos_;
          continue;
        }
        break;
      }
      SkipSpace();
      if (ok && PeekIs(':')) {
        ++pos_;
        for (const std::string& name : names) {
          Variable v = Variable::Intern(name);
          if (std::find(declared_existentials_.begin(),
                        declared_existentials_.end(),
                        v) == declared_existentials_.end()) {
            declared_existentials_.push_back(v);
          }
        }
      } else {
        pos_ = save;
      }
    }
    std::vector<Atom> atoms;
    while (true) {
      RDX_ASSIGN_OR_RETURN(Atom a, ParseHeadAtom());
      atoms.push_back(std::move(a));
      if (!ConsumeAtomSeparator()) break;
    }
    return atoms;
  }

  Result<Dependency> ParseDependencyBody() {
    SkipSpace();
    SourceLocation start = LocationAt(pos_);
    declared_existentials_.clear();
    std::vector<Atom> body;
    while (true) {
      RDX_ASSIGN_OR_RETURN(Atom a, ParseBodyAtom());
      body.push_back(std::move(a));
      if (!ConsumeAtomSeparator()) break;
    }
    SkipSpace();
    if (!ConsumeToken("->")) {
      return Status::InvalidArgument(
          StrCat("expected '->' at ", Where(pos_), " in dependency text"));
    }
    std::vector<std::vector<Atom>> disjuncts;
    while (true) {
      RDX_ASSIGN_OR_RETURN(std::vector<Atom> disjunct, ParseDisjunct());
      disjuncts.push_back(std::move(disjunct));
      SkipSpace();
      if (PeekIs('|')) {
        ++pos_;
        continue;
      }
      break;
    }
    RDX_ASSIGN_OR_RETURN(
        Dependency dep, Dependency::Make(std::move(body), std::move(disjuncts)));
    dep.set_location(start);
    dep.set_declared_existentials(std::move(declared_existentials_));
    return dep;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  // Declared EXISTS variables of the dependency currently being parsed,
  // across all of its disjuncts.
  std::vector<Variable> declared_existentials_;
};

}  // namespace

Result<Dependency> ParseDependency(std::string_view text) {
  return Parser(text).ParseOne();
}

Result<std::vector<Dependency>> ParseDependencies(std::string_view text) {
  return Parser(text).ParseMany();
}

Dependency MustParseDependency(std::string_view text) {
  Result<Dependency> d = ParseDependency(text);
  if (!d.ok()) {
    std::fprintf(stderr, "MustParseDependency(\"%.*s\"): %s\n",
                 static_cast<int>(text.size()), text.data(),
                 d.status().ToString().c_str());
    std::abort();
  }
  return *std::move(d);
}

std::vector<Dependency> MustParseDependencies(std::string_view text) {
  Result<std::vector<Dependency>> d = ParseDependencies(text);
  if (!d.ok()) {
    std::fprintf(stderr, "MustParseDependencies(\"%.*s\"): %s\n",
                 static_cast<int>(text.size()), text.data(),
                 d.status().ToString().c_str());
    std::abort();
  }
  return *std::move(d);
}

}  // namespace rdx
