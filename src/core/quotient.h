#ifndef RDX_CORE_QUOTIENT_H_
#define RDX_CORE_QUOTIENT_H_

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "core/instance.h"

namespace rdx {

/// Enumerates the null-quotients of `instance`: every homomorphic image
/// obtained by partitioning its labeled nulls into blocks and mapping each
/// block either to a constant of the active domain or to the block's
/// representative null. The identity quotient (every null its own block,
/// kept as a null) is always first.
///
/// Rationale (see composition.h): e(M') = → ∘ M' ∘ → absorbs arbitrary
/// homomorphic pre-images, and for deciding membership it suffices to
/// consider quotients of the intermediate instance — mapping nulls to
/// values outside the active domain never enables anything. Quotients make
/// the procedural (disjunctive-chase-based) composition test complete for
/// reverse mappings whose bodies use inequalities or the Constant
/// predicate, where the syntactic chase alone is incomplete.
///
/// The number of quotients grows like Bell(#nulls) · (#constants+1)^blocks;
/// the enumeration fails with ResourceExhausted beyond `max_quotients`.
Result<std::vector<Instance>> EnumerateNullQuotients(
    const Instance& instance, uint64_t max_quotients = 100'000);

}  // namespace rdx

#endif  // RDX_CORE_QUOTIENT_H_
