#include "core/match.h"

#include <algorithm>
#include <limits>

#include "base/metrics.h"
#include "base/strings.h"

namespace rdx {
namespace {

// Batched publish of one enumeration run's totals to the "match.*"
// counters — a handful of relaxed atomic adds per EnumerateMatches call.
void PublishMatchStats(const MatchStats& run, MatchStats* accumulator) {
  static obs::Counter& enumerations = obs::Counter::Get("match.enumerations");
  static obs::Counter& steps = obs::Counter::Get("match.steps");
  static obs::Counter& candidates = obs::Counter::Get("match.candidates");
  static obs::Counter& matches = obs::Counter::Get("match.matches");
  enumerations.Increment();
  steps.Add(run.steps);
  candidates.Add(run.candidates);
  matches.Add(run.matches);
  if (accumulator != nullptr) {
    accumulator->enumerations += 1;
    accumulator->steps += run.steps;
    accumulator->candidates += run.candidates;
    accumulator->matches += run.matches;
  }
}

class Matcher {
 public:
  Matcher(const std::vector<Atom>& atoms, const Instance& instance,
          const FactIndex& index, const MatchCallback& callback,
          const MatchOptions& options, const Assignment& seed)
      : instance_(instance),
        index_(index),
        callback_(callback),
        options_(options),
        assignment_(seed) {
    for (const Atom& a : atoms) {
      if (a.IsRelational()) {
        relational_.push_back(&a);
      } else {
        builtins_.push_back(&a);
      }
    }
    matched_.assign(relational_.size(), false);
  }

  Status Run() {
    steps_ = 0;
    stopped_ = false;
    bool exhausted = Search(relational_.size());
    MatchStats run;
    run.steps = steps_;
    run.candidates = candidates_;
    run.matches = matches_;
    PublishMatchStats(run, options_.stats);
    if (!exhausted && !stopped_) {
      return Status::ResourceExhausted(
          StrCat("match enumeration exceeded ", options_.max_steps,
                 " steps"));
    }
    return Status::OK();
  }

 private:
  // Returns the value of `t` under the current assignment, or nullopt if t
  // is an unbound variable.
  std::optional<Value> Lookup(const Term& t) const {
    if (t.IsConstant()) return t.constant();
    auto it = assignment_.find(t.variable());
    if (it == assignment_.end()) return std::nullopt;
    return it->second;
  }

  // True if all variables of builtin atom `a` are bound.
  bool BuiltinReady(const Atom& a) const {
    for (const Term& t : a.terms()) {
      if (t.IsVariable() && assignment_.count(t.variable()) == 0) {
        return false;
      }
    }
    return true;
  }

  // Checks the builtins that just became fully bound. Atoms whose variables
  // are all bound must hold; others are deferred.
  bool BuiltinsHold() const {
    for (const Atom* a : builtins_) {
      if (!BuiltinReady(*a)) continue;
      Result<bool> holds = a->EvalBuiltin(assignment_);
      if (!holds.ok() || !*holds) return false;
    }
    return true;
  }

  std::size_t CandidateBound(const Atom& a) const {
    const std::vector<const Fact*>* all = index_.FactsOf(a.relation());
    if (all == nullptr) return 0;
    std::size_t best = all->size();
    for (std::size_t i = 0; i < a.terms().size(); ++i) {
      std::optional<Value> v = Lookup(a.terms()[i]);
      if (!v.has_value()) continue;
      const std::vector<const Fact*>* filtered =
          index_.FactsWith(a.relation(), i, *v);
      best = std::min(best, filtered == nullptr ? 0 : filtered->size());
    }
    return best;
  }

  const std::vector<const Fact*>* Candidates(const Atom& a) const {
    const std::vector<const Fact*>* best = index_.FactsOf(a.relation());
    if (best == nullptr) return nullptr;
    for (std::size_t i = 0; i < a.terms().size(); ++i) {
      std::optional<Value> v = Lookup(a.terms()[i]);
      if (!v.has_value()) continue;
      const std::vector<const Fact*>* filtered =
          index_.FactsWith(a.relation(), i, *v);
      if (filtered == nullptr) return nullptr;
      if (filtered->size() < best->size()) best = filtered;
    }
    return best;
  }

  bool TryBindAtom(const Atom& a, const Fact& f,
                   std::vector<Variable>* newly_bound) {
    const std::vector<Term>& terms = a.terms();
    const std::vector<Value>& args = f.args();
    for (std::size_t i = 0; i < terms.size(); ++i) {
      const Term& t = terms[i];
      if (t.IsConstant()) {
        if (!(t.constant() == args[i])) return false;
        continue;
      }
      auto it = assignment_.find(t.variable());
      if (it != assignment_.end()) {
        if (!(it->second == args[i])) return false;
      } else {
        assignment_.emplace(t.variable(), args[i]);
        newly_bound->push_back(t.variable());
      }
    }
    return true;
  }

  // Returns true if the search space was fully explored (or the callback
  // stopped us); false only on budget exhaustion.
  bool Search(std::size_t remaining) {
    if (stopped_) return true;
    if (++steps_ > options_.max_steps) return false;
    if (remaining == 0) {
      ++matches_;
      if (!callback_(assignment_)) stopped_ = true;
      return true;
    }

    std::size_t best_idx = relational_.size();
    std::size_t best_bound = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < relational_.size(); ++i) {
      if (matched_[i]) continue;
      std::size_t bound = CandidateBound(*relational_[i]);
      if (bound < best_bound) {
        best_bound = bound;
        best_idx = i;
        if (bound == 0) break;
      }
    }
    if (best_bound == 0) return true;  // dead branch, fully explored

    const Atom& atom = *relational_[best_idx];
    const std::vector<const Fact*>* candidates = Candidates(atom);
    if (candidates == nullptr) return true;

    matched_[best_idx] = true;
    bool ok = true;
    for (const Fact* f : *candidates) {
      ++candidates_;
      std::vector<Variable> newly_bound;
      if (TryBindAtom(atom, *f, &newly_bound) && BuiltinsHold()) {
        ok = Search(remaining - 1);
      }
      for (Variable v : newly_bound) {
        assignment_.erase(v);
      }
      if (!ok || stopped_) break;
    }
    matched_[best_idx] = false;
    return ok;
  }

  [[maybe_unused]] const Instance& instance_;
  const FactIndex& index_;
  const MatchCallback& callback_;
  MatchOptions options_;
  std::vector<const Atom*> relational_;
  std::vector<const Atom*> builtins_;
  std::vector<bool> matched_;
  Assignment assignment_;
  uint64_t steps_ = 0;
  uint64_t candidates_ = 0;
  uint64_t matches_ = 0;
  bool stopped_ = false;
};

}  // namespace

Status EnumerateMatches(const std::vector<Atom>& atoms,
                        const Instance& instance, const FactIndex& index,
                        const MatchCallback& callback,
                        const MatchOptions& options, const Assignment& seed) {
  for (const Atom& a : atoms) {
    if (!a.IsRelational()) {
      // Safety (validated by Dependency::Make, revalidated here for direct
      // callers): builtin variables must occur in some relational atom.
      for (Variable v : a.Vars()) {
        bool found = seed.count(v) > 0;
        for (const Atom& r : atoms) {
          if (!r.IsRelational()) continue;
          for (Variable rv : r.Vars()) {
            if (rv == v) {
              found = true;
              break;
            }
          }
          if (found) break;
        }
        if (!found) {
          return Status::InvalidArgument(
              StrCat("builtin atom '", a.ToString(),
                     "' uses variable not bound by any relational atom"));
        }
      }
    }
  }
  Matcher matcher(atoms, instance, index, callback, options, seed);
  return matcher.Run();
}

Status EnumerateMatches(const std::vector<Atom>& atoms,
                        const Instance& instance, const MatchCallback& callback,
                        const MatchOptions& options, const Assignment& seed) {
  FactIndex index(instance);
  return EnumerateMatches(atoms, instance, index, callback, options, seed);
}

}  // namespace rdx
