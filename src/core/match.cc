#include "core/match.h"

#include <algorithm>
#include <limits>
#include <optional>

#include "base/metrics.h"
#include "base/parallel_for.h"
#include "base/strings.h"

namespace rdx {
namespace {

// Batched publish of one enumeration run's totals to the "match.*"
// counters — a handful of relaxed atomic adds per EnumerateMatches call.
void PublishMatchStats(const MatchStats& run, MatchStats* accumulator) {
  static obs::Counter& enumerations = obs::Counter::Get("match.enumerations");
  static obs::Counter& steps = obs::Counter::Get("match.steps");
  static obs::Counter& candidates = obs::Counter::Get("match.candidates");
  static obs::Counter& matches = obs::Counter::Get("match.matches");
  enumerations.Increment();
  steps.Add(run.steps);
  candidates.Add(run.candidates);
  matches.Add(run.matches);
  if (accumulator != nullptr) {
    accumulator->enumerations += 1;
    accumulator->steps += run.steps;
    accumulator->candidates += run.candidates;
    accumulator->matches += run.matches;
  }
}

// Value of `t` under `assignment`, or nullopt for an unbound variable.
std::optional<Value> LookupTerm(const Term& t, const Assignment& assignment) {
  if (t.IsConstant()) return t.constant();
  auto it = assignment.find(t.variable());
  if (it == assignment.end()) return std::nullopt;
  return it->second;
}

// Size of the smallest candidate list for `a` under the current bindings.
// Shared by the sequential search and the parallel root-partitioning so
// both branch on exactly the same atom (determinism depends on this).
std::size_t CandidateBoundFor(const Atom& a, const FactIndex& index,
                              const Assignment& assignment) {
  const std::vector<const Fact*>* all = index.FactsOf(a.relation());
  if (all == nullptr) return 0;
  std::size_t best = all->size();
  for (std::size_t i = 0; i < a.terms().size(); ++i) {
    std::optional<Value> v = LookupTerm(a.terms()[i], assignment);
    if (!v.has_value()) continue;
    const std::vector<const Fact*>* filtered =
        index.FactsWith(a.relation(), i, *v);
    best = std::min(best, filtered == nullptr ? 0 : filtered->size());
  }
  return best;
}

// The smallest candidate list itself (nullptr => provably no match).
const std::vector<const Fact*>* CandidatesFor(const Atom& a,
                                              const FactIndex& index,
                                              const Assignment& assignment) {
  const std::vector<const Fact*>* best = index.FactsOf(a.relation());
  if (best == nullptr) return nullptr;
  for (std::size_t i = 0; i < a.terms().size(); ++i) {
    std::optional<Value> v = LookupTerm(a.terms()[i], assignment);
    if (!v.has_value()) continue;
    const std::vector<const Fact*>* filtered =
        index.FactsWith(a.relation(), i, *v);
    if (filtered == nullptr) return nullptr;
    if (filtered->size() < best->size()) best = filtered;
  }
  return best;
}

// Extends `*assignment` so that `atom` grounds to `fact`; false (with
// *assignment possibly partially extended) on constant/binding conflict.
// Mirrors Matcher::TryBindAtom's matching rules.
bool TryExtendSeed(const Atom& atom, const Fact& fact,
                   Assignment* assignment) {
  const std::vector<Term>& terms = atom.terms();
  const std::vector<Value>& args = fact.args();
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (terms[i].IsConstant()) {
      if (!(terms[i].constant() == args[i])) return false;
      continue;
    }
    auto it = assignment->find(terms[i].variable());
    if (it != assignment->end()) {
      if (!(it->second == args[i])) return false;
    } else {
      assignment->emplace(terms[i].variable(), args[i]);
    }
  }
  return true;
}

class Matcher {
 public:
  Matcher(const std::vector<Atom>& atoms, const Instance& instance,
          const FactIndex& index, const MatchCallback& callback,
          const MatchOptions& options, const Assignment& seed)
      : instance_(instance),
        index_(index),
        callback_(callback),
        options_(options),
        assignment_(seed) {
    for (const Atom& a : atoms) {
      if (a.IsRelational()) {
        relational_.push_back(&a);
      } else {
        builtins_.push_back(&a);
      }
    }
    matched_.assign(relational_.size(), false);
  }

  // Runs the search, adding this run's counts to *run. Publishing to the
  // process-wide counters is the caller's job (CollectMatches merges
  // several partition runs into one logical enumeration first).
  Status Run(MatchStats* run) {
    steps_ = 0;
    stopped_ = false;
    bool exhausted = Search(relational_.size());
    run->steps += steps_;
    run->candidates += candidates_;
    run->matches += matches_;
    if (!exhausted && !stopped_) {
      return Status::ResourceExhausted(
          StrCat("match enumeration exceeded ", options_.max_steps,
                 " steps"));
    }
    return Status::OK();
  }

 private:
  // True if all variables of builtin atom `a` are bound.
  bool BuiltinReady(const Atom& a) const {
    for (const Term& t : a.terms()) {
      if (t.IsVariable() && assignment_.count(t.variable()) == 0) {
        return false;
      }
    }
    return true;
  }

  // Checks the builtins that just became fully bound. Atoms whose variables
  // are all bound must hold; others are deferred.
  bool BuiltinsHold() const {
    for (const Atom* a : builtins_) {
      if (!BuiltinReady(*a)) continue;
      Result<bool> holds = a->EvalBuiltin(assignment_);
      if (!holds.ok() || !*holds) return false;
    }
    return true;
  }

  bool TryBindAtom(const Atom& a, const Fact& f,
                   std::vector<Variable>* newly_bound) {
    const std::vector<Term>& terms = a.terms();
    const std::vector<Value>& args = f.args();
    for (std::size_t i = 0; i < terms.size(); ++i) {
      const Term& t = terms[i];
      if (t.IsConstant()) {
        if (!(t.constant() == args[i])) return false;
        continue;
      }
      auto it = assignment_.find(t.variable());
      if (it != assignment_.end()) {
        if (!(it->second == args[i])) return false;
      } else {
        assignment_.emplace(t.variable(), args[i]);
        newly_bound->push_back(t.variable());
      }
    }
    return true;
  }

  // Returns true if the search space was fully explored (or the callback
  // stopped us); false only on budget exhaustion.
  bool Search(std::size_t remaining) {
    if (stopped_) return true;
    if (++steps_ > options_.max_steps) return false;
    if (remaining == 0) {
      ++matches_;
      if (!callback_(assignment_)) stopped_ = true;
      return true;
    }

    std::size_t best_idx = relational_.size();
    std::size_t best_bound = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < relational_.size(); ++i) {
      if (matched_[i]) continue;
      std::size_t bound = CandidateBoundFor(*relational_[i], index_,
                                            assignment_);
      if (bound < best_bound) {
        best_bound = bound;
        best_idx = i;
        if (bound == 0) break;
      }
    }
    if (best_bound == 0) return true;  // dead branch, fully explored

    const Atom& atom = *relational_[best_idx];
    const std::vector<const Fact*>* candidates =
        CandidatesFor(atom, index_, assignment_);
    if (candidates == nullptr) return true;

    matched_[best_idx] = true;
    bool ok = true;
    for (const Fact* f : *candidates) {
      ++candidates_;
      std::vector<Variable> newly_bound;
      if (TryBindAtom(atom, *f, &newly_bound) && BuiltinsHold()) {
        ok = Search(remaining - 1);
      }
      for (Variable v : newly_bound) {
        assignment_.erase(v);
      }
      if (!ok || stopped_) break;
    }
    matched_[best_idx] = false;
    return ok;
  }

  [[maybe_unused]] const Instance& instance_;
  const FactIndex& index_;
  const MatchCallback& callback_;
  MatchOptions options_;
  std::vector<const Atom*> relational_;
  std::vector<const Atom*> builtins_;
  std::vector<bool> matched_;
  Assignment assignment_;
  uint64_t steps_ = 0;
  uint64_t candidates_ = 0;
  uint64_t matches_ = 0;
  bool stopped_ = false;
};

// Safety validation (done by Dependency::Make, revalidated for direct
// callers): builtin variables must occur in some relational atom or the
// seed.
Status ValidateBuiltinVars(const std::vector<Atom>& atoms,
                           const Assignment& seed) {
  for (const Atom& a : atoms) {
    if (a.IsRelational()) continue;
    for (Variable v : a.Vars()) {
      bool found = seed.count(v) > 0;
      for (const Atom& r : atoms) {
        if (!r.IsRelational()) continue;
        for (Variable rv : r.Vars()) {
          if (rv == v) {
            found = true;
            break;
          }
        }
        if (found) break;
      }
      if (!found) {
        return Status::InvalidArgument(
            StrCat("builtin atom '", a.ToString(),
                   "' uses variable not bound by any relational atom"));
      }
    }
  }
  return Status::OK();
}

// Parallel collection: partition the search by the candidate facts of the
// root atom the sequential Matcher would branch on first. Each partition
// k pre-binds the root atom to candidate fact k and runs the identical
// sub-search over the remaining atoms, so concatenating partition results
// in candidate order reproduces the sequential enumeration order — and
// the summed candidates/matches counts — exactly. Only `steps` shifts
// (the shared root node is counted once here, not per partition).
Result<std::vector<Assignment>> CollectMatchesParallel(
    const std::vector<Atom>& atoms, const Instance& instance,
    const FactIndex& index, const MatchOptions& options,
    const Assignment& seed) {
  // Replicate the sequential root: pick the most constrained relational
  // atom (smallest candidate bound, ties to the first).
  const Atom* root = nullptr;
  std::size_t root_pos = 0;
  std::size_t best_bound = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    if (!atoms[i].IsRelational()) continue;
    std::size_t bound = CandidateBoundFor(atoms[i], index, seed);
    if (bound < best_bound) {
      best_bound = bound;
      root = &atoms[i];
      root_pos = i;
      if (bound == 0) break;
    }
  }
  MatchStats merged;
  merged.steps = 1;  // the shared root node
  if (root == nullptr || best_bound == 0) {
    // No relational atoms is handled by the sequential path; a zero bound
    // means a provably dead root, exactly like the sequential search.
    PublishMatchStats(merged, options.stats);
    return std::vector<Assignment>();
  }
  const std::vector<const Fact*>* candidates = CandidatesFor(*root, index,
                                                             seed);
  if (candidates == nullptr) {
    PublishMatchStats(merged, options.stats);
    return std::vector<Assignment>();
  }

  std::vector<Atom> sub_atoms;
  sub_atoms.reserve(atoms.size() - 1);
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    if (i != root_pos) sub_atoms.push_back(atoms[i]);
  }

  struct Partition {
    std::vector<Assignment> matches;
    MatchStats run;
    Status status = Status::OK();
  };
  std::vector<Partition> parts(candidates->size());
  par::ParallelFor(
      options.num_threads, candidates->size(), [&](std::size_t k) {
        Partition& p = parts[k];
        p.run.candidates = 1;  // the root (atom, fact) binding attempt
        Assignment sub_seed = seed;
        if (!TryExtendSeed(*root, *(*candidates)[k], &sub_seed)) return;
        // Builtins fully bound by the extended seed prune here, exactly
        // where the sequential search checks them after the root binding.
        for (const Atom& a : sub_atoms) {
          if (a.IsRelational()) continue;
          bool ready = true;
          for (Variable v : a.Vars()) {
            if (sub_seed.count(v) == 0) {
              ready = false;
              break;
            }
          }
          if (!ready) continue;
          Result<bool> holds = a.EvalBuiltin(sub_seed);
          if (!holds.ok() || !*holds) return;
        }
        MatchOptions sub_options = options;
        sub_options.num_threads = 1;
        sub_options.stats = nullptr;
        // Matcher stores the callback by reference, so it must outlive
        // Run() — a lambda passed inline dies with the constructor's
        // full-expression (stack-use-after-scope).
        MatchCallback collect = [&p](const Assignment& match) {
          p.matches.push_back(match);
          return true;
        };
        Matcher matcher(sub_atoms, instance, index, collect, sub_options,
                        sub_seed);
        p.status = matcher.Run(&p.run);
      });

  std::vector<Assignment> out;
  for (const Partition& p : parts) {
    merged.steps += p.run.steps;
    merged.candidates += p.run.candidates;
    merged.matches += p.run.matches;
  }
  PublishMatchStats(merged, options.stats);
  for (const Partition& p : parts) {
    RDX_RETURN_IF_ERROR(p.status);
  }
  for (Partition& p : parts) {
    out.insert(out.end(), std::make_move_iterator(p.matches.begin()),
               std::make_move_iterator(p.matches.end()));
  }
  return out;
}

}  // namespace

Status EnumerateMatches(const std::vector<Atom>& atoms,
                        const Instance& instance, const FactIndex& index,
                        const MatchCallback& callback,
                        const MatchOptions& options, const Assignment& seed) {
  RDX_RETURN_IF_ERROR(ValidateBuiltinVars(atoms, seed));
  Matcher matcher(atoms, instance, index, callback, options, seed);
  MatchStats run;
  Status status = matcher.Run(&run);
  PublishMatchStats(run, options.stats);
  return status;
}

Status EnumerateMatches(const std::vector<Atom>& atoms,
                        const Instance& instance, const MatchCallback& callback,
                        const MatchOptions& options, const Assignment& seed) {
  FactIndex index(instance);
  return EnumerateMatches(atoms, instance, index, callback, options, seed);
}

Result<std::vector<Assignment>> CollectMatches(
    const std::vector<Atom>& atoms, const Instance& instance,
    const FactIndex& index, const MatchOptions& options,
    const Assignment& seed) {
  bool has_relational = false;
  for (const Atom& a : atoms) {
    if (a.IsRelational()) {
      has_relational = true;
      break;
    }
  }
  if (options.num_threads > 1 && has_relational) {
    RDX_RETURN_IF_ERROR(ValidateBuiltinVars(atoms, seed));
    return CollectMatchesParallel(atoms, instance, index, options, seed);
  }
  std::vector<Assignment> out;
  Status status = EnumerateMatches(
      atoms, instance, index,
      [&](const Assignment& match) {
        out.push_back(match);
        return true;
      },
      options, seed);
  RDX_RETURN_IF_ERROR(status);
  return out;
}

}  // namespace rdx
