#include "core/match.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <unordered_map>

#include "base/metrics.h"
#include "base/parallel_for.h"
#include "base/strings.h"

namespace rdx {
namespace {

// Batched publish of one enumeration run's totals to the "match.*"
// counters — a handful of relaxed atomic adds per EnumerateMatches call.
void PublishMatchStats(const MatchStats& run, MatchStats* accumulator) {
  static obs::Counter& enumerations = obs::Counter::Get("match.enumerations");
  static obs::Counter& steps = obs::Counter::Get("match.steps");
  static obs::Counter& candidates = obs::Counter::Get("match.candidates");
  static obs::Counter& matches = obs::Counter::Get("match.matches");
  enumerations.Increment();
  steps.Add(run.steps);
  candidates.Add(run.candidates);
  matches.Add(run.matches);
  if (accumulator != nullptr) {
    accumulator->enumerations += 1;
    accumulator->steps += run.steps;
    accumulator->candidates += run.candidates;
    accumulator->matches += run.matches;
  }
}

// Value of `t` under `assignment`, or nullopt for an unbound variable.
std::optional<Value> LookupTerm(const Term& t, const Assignment& assignment) {
  if (t.IsConstant()) return t.constant();
  auto it = assignment.find(t.variable());
  if (it == assignment.end()) return std::nullopt;
  return it->second;
}

// Size of the smallest candidate list for `a` under the current bindings.
// Shared by the parallel root-partitioning and (in slot form, inside
// Matcher) the sequential search, so both branch on exactly the same atom
// (determinism depends on this).
std::size_t CandidateBoundFor(const Atom& a, const FactIndex& index,
                              const Assignment& assignment) {
  const FactIndex::RelStore* store = index.StoreOf(a.relation());
  if (store == nullptr) return 0;
  std::size_t best = store->rows();
  for (std::size_t i = 0; i < a.terms().size(); ++i) {
    std::optional<Value> v = LookupTerm(a.terms()[i], assignment);
    if (!v.has_value()) continue;
    const std::vector<uint32_t>* rows = store->RowsWith(i, v->PackedId());
    best = std::min(best, rows == nullptr ? std::size_t{0} : rows->size());
  }
  return best;
}

// The smallest candidate row list for `a`: `dead` when provably no match;
// otherwise `rows` is the tightest posting list, or nullptr meaning every
// row of `store`.
struct CandidateRows {
  const FactIndex::RelStore* store = nullptr;
  const std::vector<uint32_t>* rows = nullptr;
  bool dead = true;
};
CandidateRows CandidatesFor(const Atom& a, const FactIndex& index,
                            const Assignment& assignment) {
  CandidateRows out;
  out.store = index.StoreOf(a.relation());
  if (out.store == nullptr) return out;
  std::size_t best = out.store->rows();
  for (std::size_t i = 0; i < a.terms().size(); ++i) {
    std::optional<Value> v = LookupTerm(a.terms()[i], assignment);
    if (!v.has_value()) continue;
    const std::vector<uint32_t>* rows = out.store->RowsWith(i, v->PackedId());
    if (rows == nullptr) return out;
    if (rows->size() < best) {
      best = rows->size();
      out.rows = rows;
    }
  }
  out.dead = false;
  return out;
}

// Extends `*assignment` so that `atom` grounds to `fact`; false (with
// *assignment possibly partially extended) on constant/binding conflict.
// Mirrors Matcher::TryBindRow's matching rules.
bool TryExtendSeed(const Atom& atom, const Fact& fact,
                   Assignment* assignment) {
  const std::vector<Term>& terms = atom.terms();
  const std::vector<Value>& args = fact.args();
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (terms[i].IsConstant()) {
      if (!(terms[i].constant() == args[i])) return false;
      continue;
    }
    auto it = assignment->find(terms[i].variable());
    if (it != assignment->end()) {
      if (!(it->second == args[i])) return false;
    } else {
      assignment->emplace(terms[i].variable(), args[i]);
    }
  }
  return true;
}

// The backtracking enumerator, lowered onto the columnar index: atoms are
// compiled once into packed-id rows (constant terms inline, variables as
// dense slot numbers), the assignment under construction is a flat uint32
// vector indexed by slot, and candidate filtering walks the index's
// per-position posting lists of row numbers. Assignment (the hash map) is
// only materialized when a complete match is delivered. Enumeration order
// and the steps/candidates/matches counters are identical to the original
// pointer-based search: rows are in insertion order exactly like the old
// per-(relation,position,value) fact lists, and the most-constrained-first
// choice compares the same list sizes.
class Matcher {
 public:
  Matcher(const std::vector<Atom>& atoms, const Instance& instance,
          const FactIndex& index, const MatchCallback& callback,
          const MatchOptions& options, const Assignment& seed)
      : instance_(instance),
        index_(index),
        callback_(callback),
        options_(options),
        seed_(seed) {
    std::unordered_map<uint32_t, uint32_t> slot_of;  // variable id -> slot
    auto slot_for = [&](Variable v) {
      auto [it, inserted] =
          slot_of.emplace(v.id(), static_cast<uint32_t>(slot_vars_.size()));
      if (inserted) slot_vars_.push_back(v);
      return it->second;
    };
    std::size_t total_arity = 0;
    for (const Atom& a : atoms) {
      if (a.IsRelational()) total_arity += a.terms().size();
    }
    terms_.reserve(total_arity);
    is_var_.reserve(total_arity);
    for (const Atom& a : atoms) {
      if (a.IsRelational()) {
        PreparedAtom p;
        p.store = index.StoreOf(a.relation());
        p.begin = static_cast<uint32_t>(terms_.size());
        p.arity = static_cast<uint32_t>(a.terms().size());
        for (const Term& t : a.terms()) {
          if (t.IsConstant()) {
            terms_.push_back(t.constant().PackedId());
            is_var_.push_back(0);
          } else {
            terms_.push_back(slot_for(t.variable()));
            is_var_.push_back(1);
          }
        }
        relational_.push_back(p);
      } else {
        PreparedBuiltin b;
        b.atom = &a;
        for (Variable v : a.Vars()) {
          b.slots.push_back(slot_for(v));
        }
        builtins_.push_back(std::move(b));
      }
    }
    binding_.assign(slot_vars_.size(), Value::kInvalidPackedId);
    for (std::size_t s = 0; s < slot_vars_.size(); ++s) {
      auto it = seed.find(slot_vars_[s]);
      if (it != seed.end()) binding_[s] = it->second.PackedId();
    }
    matched_.assign(relational_.size(), false);
    // One bind-undo scratch vector per search depth, reused across every
    // candidate tried at that depth — the inner loop never allocates.
    bind_stack_.resize(relational_.size());
  }

  // Collection mode: complete matches are appended to `*out` (constructed
  // in place and moved, never copied) instead of going through the
  // callback. CollectMatches uses this; the callback is ignored.
  void CollectInto(std::vector<Assignment>* out) { collect_ = out; }

  // Runs the search, adding this run's counts to *run. Publishing to the
  // process-wide counters is the caller's job (CollectMatches merges
  // several partition runs into one logical enumeration first).
  Status Run(MatchStats* run) {
    steps_ = 0;
    stopped_ = false;
    bool exhausted = Search(relational_.size());
    run->steps += steps_;
    run->candidates += candidates_;
    run->matches += matches_;
    if (!exhausted && !stopped_) {
      return Status::ResourceExhausted(
          StrCat("match enumeration exceeded ", options_.max_steps,
                 " steps"));
    }
    return Status::OK();
  }

 private:
  // One relational atom, lowered: terms_[begin + pos] is the constant's
  // packed id when is_var_[begin + pos] == 0, else the variable's slot
  // number. Positions live in shared arenas so lowering a body costs two
  // allocations total, not two per atom — the chase constructs a Matcher
  // per dependency per round, so setup cost is on its hot path.
  struct PreparedAtom {
    const FactIndex::RelStore* store = nullptr;  // null: relation unindexed
    uint32_t begin = 0;
    uint32_t arity = 0;
  };
  struct PreparedBuiltin {
    const Atom* atom = nullptr;
    std::vector<uint32_t> slots;  // slots of the atom's variables
  };

  // True if all variables of builtin `b` are bound.
  bool BuiltinReady(const PreparedBuiltin& b) const {
    for (uint32_t s : b.slots) {
      if (binding_[s] == Value::kInvalidPackedId) return false;
    }
    return true;
  }

  // Checks the builtins that just became fully bound. Atoms whose variables
  // are all bound must hold; others are deferred. Builtins are evaluated on
  // a mini-assignment of just their own variables (EvalBuiltin reads
  // nothing else), rebuilt per check — builtins are rare and tiny.
  bool BuiltinsHold() const {
    for (const PreparedBuiltin& b : builtins_) {
      if (!BuiltinReady(b)) continue;
      Assignment mini;
      for (uint32_t s : b.slots) {
        mini.emplace(slot_vars_[s], Value::FromPackedId(binding_[s]));
      }
      Result<bool> holds = b.atom->EvalBuiltin(mini);
      if (!holds.ok() || !*holds) return false;
    }
    return true;
  }

  bool TryBindRow(const PreparedAtom& a, uint32_t row,
                  std::vector<uint32_t>* newly_bound) {
    for (std::size_t pos = 0; pos < a.arity; ++pos) {
      const uint32_t gv = a.store->cols[pos][row];
      if (!is_var_[a.begin + pos]) {
        if (terms_[a.begin + pos] != gv) return false;
        continue;
      }
      const uint32_t slot = terms_[a.begin + pos];
      const uint32_t bound = binding_[slot];
      if (bound != Value::kInvalidPackedId) {
        if (bound != gv) return false;
      } else {
        binding_[slot] = gv;
        newly_bound->push_back(slot);
      }
    }
    return true;
  }

  // The candidate bound of `a` under the current binding — the size of the
  // tightest single-position posting list (`list`, nullptr meaning every
  // row of the store) — computed in one pass over the atom's positions so
  // atom selection and candidate enumeration share the probes.
  struct AtomCandidates {
    std::size_t bound = 0;
    const std::vector<uint32_t>* list = nullptr;
  };
  AtomCandidates CandidatesOf(const PreparedAtom& a) const {
    AtomCandidates out;
    if (a.store == nullptr) return out;  // unindexed relation: bound 0
    out.bound = a.store->rows();
    for (std::size_t pos = 0; pos < a.arity; ++pos) {
      uint32_t vid = terms_[a.begin + pos];
      if (is_var_[a.begin + pos]) {
        vid = binding_[vid];
        if (vid == Value::kInvalidPackedId) continue;
      }
      const std::vector<uint32_t>* rows = a.store->RowsWith(pos, vid);
      if (rows == nullptr) {  // no row has this value here: dead atom
        out.bound = 0;
        return out;
      }
      if (rows->size() < out.bound) {
        out.bound = rows->size();
        out.list = rows;
      }
    }
    return out;
  }

  // Materializes the current flat binding as an Assignment extending the
  // seed and hands it to the callback. The map is a reused member so
  // steady-state delivery only pays the per-entry node insertions, not a
  // fresh table; the callback sees each delivery as a distinct value and
  // must copy if it keeps it (the documented MatchCallback contract).
  bool Deliver() {
    // Collection mode: materialize straight into the output vector — one
    // construction per match, no copy.
    Assignment& out = collect_ != nullptr
                          ? collect_->emplace_back()
                          : (delivery_.clear(), delivery_);
    for (const auto& [var, value] : seed_) {
      out.emplace(var, value);
    }
    for (std::size_t s = 0; s < binding_.size(); ++s) {
      if (binding_[s] != Value::kInvalidPackedId) {
        out.insert_or_assign(slot_vars_[s], Value::FromPackedId(binding_[s]));
      }
    }
    return collect_ != nullptr || callback_(delivery_);
  }

  // Returns true if the search space was fully explored (or the callback
  // stopped us); false only on budget exhaustion.
  bool Search(std::size_t remaining) {
    if (stopped_) return true;
    if (++steps_ > options_.max_steps) return false;
    if (remaining == 0) {
      ++matches_;
      if (!Deliver()) stopped_ = true;
      return true;
    }

    std::size_t best_idx = relational_.size();
    AtomCandidates best{std::numeric_limits<std::size_t>::max(), nullptr};
    for (std::size_t i = 0; i < relational_.size(); ++i) {
      if (matched_[i]) continue;
      AtomCandidates c = CandidatesOf(relational_[i]);
      if (c.bound < best.bound) {
        best = c;
        best_idx = i;
        if (c.bound == 0) break;
      }
    }
    if (best.bound == 0) return true;  // dead branch, fully explored

    // The candidate rows: the tightest single-position posting list found
    // during selection, or every row of the relation.
    const PreparedAtom& atom = relational_[best_idx];
    const std::vector<uint32_t>* list = best.list;

    matched_[best_idx] = true;
    bool ok = true;
    const uint32_t n_rows = static_cast<uint32_t>(atom.store->rows());
    std::vector<uint32_t>& newly_bound = bind_stack_[remaining - 1];
    for (uint32_t k = 0; k < (list ? list->size() : n_rows); ++k) {
      const uint32_t row = list ? (*list)[k] : k;
      ++candidates_;
      newly_bound.clear();
      if (TryBindRow(atom, row, &newly_bound) && BuiltinsHold()) {
        ok = Search(remaining - 1);
      }
      for (uint32_t slot : newly_bound) {
        binding_[slot] = Value::kInvalidPackedId;
      }
      if (!ok || stopped_) break;
    }
    matched_[best_idx] = false;
    return ok;
  }

  [[maybe_unused]] const Instance& instance_;
  const FactIndex& index_;
  const MatchCallback& callback_;
  MatchOptions options_;
  Assignment seed_;
  std::vector<PreparedAtom> relational_;
  std::vector<uint32_t> terms_;   // shared arena, see PreparedAtom
  std::vector<uint8_t> is_var_;   // shared arena, see PreparedAtom
  std::vector<PreparedBuiltin> builtins_;
  std::vector<Variable> slot_vars_;  // slot -> the variable it stands for
  std::vector<bool> matched_;
  std::vector<uint32_t> binding_;  // slot -> packed value id, or invalid
  // bind_stack_[depth] holds the slots bound while trying one candidate at
  // that depth (cleared per candidate; distinct depths never alias).
  std::vector<std::vector<uint32_t>> bind_stack_;
  Assignment delivery_;  // Deliver()'s reused output map (callback mode)
  std::vector<Assignment>* collect_ = nullptr;  // collection mode sink
  uint64_t steps_ = 0;
  uint64_t candidates_ = 0;
  uint64_t matches_ = 0;
  bool stopped_ = false;
};

// Safety validation (done by Dependency::Make, revalidated for direct
// callers): builtin variables must occur in some relational atom or the
// seed.
Status ValidateBuiltinVars(const std::vector<Atom>& atoms,
                           const Assignment& seed) {
  for (const Atom& a : atoms) {
    if (a.IsRelational()) continue;
    for (Variable v : a.Vars()) {
      bool found = seed.count(v) > 0;
      for (const Atom& r : atoms) {
        if (!r.IsRelational()) continue;
        for (Variable rv : r.Vars()) {
          if (rv == v) {
            found = true;
            break;
          }
        }
        if (found) break;
      }
      if (!found) {
        return Status::InvalidArgument(
            StrCat("builtin atom '", a.ToString(),
                   "' uses variable not bound by any relational atom"));
      }
    }
  }
  return Status::OK();
}

// Parallel collection: partition the search by the candidate facts of the
// root atom the sequential Matcher would branch on first. Each partition
// k pre-binds the root atom to candidate fact k and runs the identical
// sub-search over the remaining atoms, so concatenating partition results
// in candidate order reproduces the sequential enumeration order — and
// the summed candidates/matches counts — exactly. Only `steps` shifts
// (the shared root node is counted once here, not per partition).
Result<std::vector<Assignment>> CollectMatchesParallel(
    const std::vector<Atom>& atoms, const Instance& instance,
    const FactIndex& index, const MatchOptions& options,
    const Assignment& seed) {
  // Replicate the sequential root: pick the most constrained relational
  // atom (smallest candidate bound, ties to the first).
  const Atom* root = nullptr;
  std::size_t root_pos = 0;
  std::size_t best_bound = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    if (!atoms[i].IsRelational()) continue;
    std::size_t bound = CandidateBoundFor(atoms[i], index, seed);
    if (bound < best_bound) {
      best_bound = bound;
      root = &atoms[i];
      root_pos = i;
      if (bound == 0) break;
    }
  }
  MatchStats merged;
  merged.steps = 1;  // the shared root node
  if (root == nullptr || best_bound == 0) {
    // No relational atoms is handled by the sequential path; a zero bound
    // means a provably dead root, exactly like the sequential search.
    PublishMatchStats(merged, options.stats);
    return std::vector<Assignment>();
  }
  CandidateRows candidates = CandidatesFor(*root, index, seed);
  if (candidates.dead) {
    PublishMatchStats(merged, options.stats);
    return std::vector<Assignment>();
  }
  const std::size_t n_candidates = candidates.rows != nullptr
                                       ? candidates.rows->size()
                                       : candidates.store->rows();

  std::vector<Atom> sub_atoms;
  sub_atoms.reserve(atoms.size() - 1);
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    if (i != root_pos) sub_atoms.push_back(atoms[i]);
  }

  struct Partition {
    std::vector<Assignment> matches;
    MatchStats run;
    Status status = Status::OK();
  };
  std::vector<Partition> parts(n_candidates);
  par::ParallelFor(
      options.num_threads, n_candidates, [&](std::size_t k) {
        Partition& p = parts[k];
        p.run.candidates = 1;  // the root (atom, fact) binding attempt
        const uint32_t row = candidates.rows != nullptr
                                 ? (*candidates.rows)[k]
                                 : static_cast<uint32_t>(k);
        const Fact* fact = candidates.store->facts[row];
        Assignment sub_seed = seed;
        if (!TryExtendSeed(*root, *fact, &sub_seed)) return;
        // Builtins fully bound by the extended seed prune here, exactly
        // where the sequential search checks them after the root binding.
        for (const Atom& a : sub_atoms) {
          if (a.IsRelational()) continue;
          bool ready = true;
          for (Variable v : a.Vars()) {
            if (sub_seed.count(v) == 0) {
              ready = false;
              break;
            }
          }
          if (!ready) continue;
          Result<bool> holds = a.EvalBuiltin(sub_seed);
          if (!holds.ok() || !*holds) return;
        }
        MatchOptions sub_options = options;
        sub_options.num_threads = 1;
        sub_options.stats = nullptr;
        static const MatchCallback kUnused = [](const Assignment&) {
          return true;
        };
        Matcher matcher(sub_atoms, instance, index, kUnused, sub_options,
                        sub_seed);
        matcher.CollectInto(&p.matches);
        p.status = matcher.Run(&p.run);
      });

  std::vector<Assignment> out;
  for (const Partition& p : parts) {
    merged.steps += p.run.steps;
    merged.candidates += p.run.candidates;
    merged.matches += p.run.matches;
  }
  PublishMatchStats(merged, options.stats);
  for (const Partition& p : parts) {
    RDX_RETURN_IF_ERROR(p.status);
  }
  for (Partition& p : parts) {
    out.insert(out.end(), std::make_move_iterator(p.matches.begin()),
               std::make_move_iterator(p.matches.end()));
  }
  return out;
}

}  // namespace

Status EnumerateMatches(const std::vector<Atom>& atoms,
                        const Instance& instance, const FactIndex& index,
                        const MatchCallback& callback,
                        const MatchOptions& options, const Assignment& seed) {
  RDX_RETURN_IF_ERROR(ValidateBuiltinVars(atoms, seed));
  Matcher matcher(atoms, instance, index, callback, options, seed);
  MatchStats run;
  Status status = matcher.Run(&run);
  PublishMatchStats(run, options.stats);
  return status;
}

Status EnumerateMatches(const std::vector<Atom>& atoms,
                        const Instance& instance, const MatchCallback& callback,
                        const MatchOptions& options, const Assignment& seed) {
  FactIndex index(instance);
  return EnumerateMatches(atoms, instance, index, callback, options, seed);
}

Result<std::vector<Assignment>> CollectMatches(
    const std::vector<Atom>& atoms, const Instance& instance,
    const FactIndex& index, const MatchOptions& options,
    const Assignment& seed) {
  bool has_relational = false;
  for (const Atom& a : atoms) {
    if (a.IsRelational()) {
      has_relational = true;
      break;
    }
  }
  if (options.num_threads > 1 && has_relational) {
    RDX_RETURN_IF_ERROR(ValidateBuiltinVars(atoms, seed));
    return CollectMatchesParallel(atoms, instance, index, options, seed);
  }
  RDX_RETURN_IF_ERROR(ValidateBuiltinVars(atoms, seed));
  std::vector<Assignment> out;
  static const MatchCallback kUnused = [](const Assignment&) { return true; };
  Matcher matcher(atoms, instance, index, kUnused, options, seed);
  matcher.CollectInto(&out);
  MatchStats run;
  Status status = matcher.Run(&run);
  PublishMatchStats(run, options.stats);
  RDX_RETURN_IF_ERROR(status);
  return out;
}

}  // namespace rdx
