#ifndef RDX_CORE_DEPENDENCY_PARSER_H_
#define RDX_CORE_DEPENDENCY_PARSER_H_

#include <string_view>
#include <vector>

#include "base/status.h"
#include "core/dependency.h"

namespace rdx {

/// Parses one dependency from text. Syntax (whitespace-insensitive):
///
///   P(x, y) & x != y -> EXISTS z: Q(x, z) & Q(z, y) | R(y)
///
///  * bare identifiers in atom arguments are variables;
///  * quoted tokens ('abc') and all-digit tokens (42) are constants;
///  * body atoms are separated by '&' (or ','); builtins are `t != t'`
///    and `Constant(t)`;
///  * disjuncts are separated by '|'; an optional `EXISTS v1, v2:` prefix
///    may name the existential variables (they are implicit regardless:
///    every head variable not in the body is existential).
///
/// Relation symbols are interned with the observed arity; an arity clash
/// with a previous use is an error.
Result<Dependency> ParseDependency(std::string_view text);

/// Parses a ';'-separated list of dependencies.
Result<std::vector<Dependency>> ParseDependencies(std::string_view text);

/// Abort-on-error variants for literals in tests and examples.
Dependency MustParseDependency(std::string_view text);
std::vector<Dependency> MustParseDependencies(std::string_view text);

}  // namespace rdx

#endif  // RDX_CORE_DEPENDENCY_PARSER_H_
