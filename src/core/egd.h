#ifndef RDX_CORE_EGD_H_
#define RDX_CORE_EGD_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "core/atom.h"

namespace rdx {

/// An equality-generating dependency:
///
///   ∀x ( body(x) → x_i = x_j ∧ ... )
///
/// the other half of the classical data-exchange dependency language
/// (the paper's reference [8], "Data Exchange: Semantics and Query
/// Answering"). Egds express keys and functional dependencies, which
/// tgds cannot — e.g. `Loc(id, c1) & Loc(id, c2) -> c1 = c2` makes `id`
/// a key of Loc. Chasing with egds unifies labeled nulls (and fails when
/// two distinct constants are equated); see chase/egd_chase.h.
class Egd {
 public:
  /// Builds and validates an egd: the body must contain at least one
  /// relational atom; every equated variable must occur in a relational
  /// body atom; at least one equality.
  static Result<Egd> Make(std::vector<Atom> body,
                          std::vector<std::pair<Variable, Variable>> equalities);

  /// Parses "Loc(id, c1) & Loc(id, c2) -> c1 = c2 & ..." (same body
  /// syntax as tgds; the head is a '&'-conjunction of `var = var`).
  static Result<Egd> Parse(std::string_view text);

  /// Like Parse but aborts on error; for literals in tests and examples.
  static Egd MustParse(std::string_view text);

  const std::vector<Atom>& body() const { return body_; }
  const std::vector<std::pair<Variable, Variable>>& equalities() const {
    return equalities_;
  }

  std::string ToString() const;

 private:
  Egd(std::vector<Atom> body,
      std::vector<std::pair<Variable, Variable>> equalities)
      : body_(std::move(body)), equalities_(std::move(equalities)) {}

  std::vector<Atom> body_;
  std::vector<std::pair<Variable, Variable>> equalities_;
};

}  // namespace rdx

#endif  // RDX_CORE_EGD_H_
