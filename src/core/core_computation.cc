#include "core/core_computation.h"

#include <algorithm>
#include <vector>

#include "base/metrics.h"
#include "base/parallel_for.h"
#include "base/trace.h"

namespace rdx {
namespace {

// Adds an attempt-local HomomorphismStats into the caller's accumulator
// (the accumulator pointer is not thread-safe; raced attempts record
// locally and only the ones the sequential scan would have made are
// merged, so accumulated totals stay deterministic).
void MergeHomStats(const HomomorphismStats& run,
                   HomomorphismStats* accumulator) {
  if (accumulator == nullptr) return;
  accumulator->searches += run.searches;
  accumulator->steps += run.steps;
  accumulator->candidate_pairs += run.candidate_pairs;
  accumulator->backtracks += run.backtracks;
  accumulator->domain_filter_prunes += run.domain_filter_prunes;
  accumulator->found += run.found;
  accumulator->micros += run.micros;
}

// Searches for an endomorphism of `instance` whose image misses at least one
// fact. Returns the (strictly smaller) image if found. Counts every
// candidate fact tried into `run`.
//
// With options.num_threads > 1 the independent retraction attempts race in
// chunks of num_threads; the winner is the lowest candidate index whose
// removal admits a homomorphism — exactly the fold the sequential scan
// performs, so the fold sequence (and thus the core) is identical for
// every thread count. Losing attempts past the winner are speculative:
// their stats are dropped from the accumulator, though the process-wide
// hom.* counters do see them.
Result<std::optional<Instance>> FindShrinkingImage(
    const Instance& instance, const HomomorphismOptions& options,
    CoreStats* run) {
  // Ground facts map to themselves under every homomorphism, so they can
  // never be dropped.
  std::vector<const Fact*> candidates;
  for (const Fact& f : instance.facts()) {
    if (!f.IsGround()) candidates.push_back(&f);
  }

  if (options.num_threads <= 1 || candidates.size() <= 1) {
    for (const Fact* f : candidates) {
      ++run->retraction_attempts;
      Instance target = instance;
      target.RemoveFact(*f);
      RDX_ASSIGN_OR_RETURN(std::optional<ValueMap> h,
                           FindHomomorphism(instance, target, {}, options));
      if (h.has_value()) {
        // h maps into a proper subinstance, so its image is strictly
        // smaller and homomorphically equivalent (image ⊆ instance →
        // image).
        ++run->successful_folds;
        return std::optional<Instance>(instance.Apply(*h));
      }
    }
    return std::optional<Instance>();
  }

  struct Attempt {
    std::optional<ValueMap> h;
    HomomorphismStats hom_run;
    Status status = Status::OK();
  };
  const std::size_t chunk = options.num_threads;
  for (std::size_t base = 0; base < candidates.size(); base += chunk) {
    const std::size_t count = std::min(chunk, candidates.size() - base);
    std::vector<Attempt> attempts(count);
    par::ParallelFor(options.num_threads, count, [&](std::size_t k) {
      Attempt& attempt = attempts[k];
      HomomorphismOptions task_options = options;
      task_options.num_threads = 1;
      task_options.stats = &attempt.hom_run;
      Instance target = instance;
      target.RemoveFact(*candidates[base + k]);
      Result<std::optional<ValueMap>> h =
          FindHomomorphism(instance, target, {}, task_options);
      if (h.ok()) {
        attempt.h = *std::move(h);
      } else {
        attempt.status = h.status();
      }
    });
    for (std::size_t k = 0; k < count; ++k) {
      ++run->retraction_attempts;
      MergeHomStats(attempts[k].hom_run, options.stats);
      RDX_RETURN_IF_ERROR(attempts[k].status);
      if (attempts[k].h.has_value()) {
        ++run->successful_folds;
        return std::optional<Instance>(instance.Apply(*attempts[k].h));
      }
    }
  }
  return std::optional<Instance>();
}

// Batched publish of one run's totals to the "core.*" counters, the
// caller's accumulator (if any), and the trace sink.
void PublishCoreStats(const CoreStats& run, CoreStats* accumulator,
                      uint64_t initial_facts, uint64_t final_facts) {
  static obs::Counter& runs = obs::Counter::Get("core.runs");
  static obs::Counter& iterations = obs::Counter::Get("core.iterations");
  static obs::Counter& attempts =
      obs::Counter::Get("core.retraction_attempts");
  static obs::Counter& folds = obs::Counter::Get("core.successful_folds");
  static obs::Counter& us = obs::Counter::Get("core.us");
  runs.Increment();
  iterations.Add(run.iterations);
  attempts.Add(run.retraction_attempts);
  folds.Add(run.successful_folds);
  us.Add(run.micros);
  if (accumulator != nullptr) {
    accumulator->iterations += run.iterations;
    accumulator->retraction_attempts += run.retraction_attempts;
    accumulator->successful_folds += run.successful_folds;
    accumulator->micros += run.micros;
  }
  if (obs::TracingEnabled()) {
    obs::EmitTrace(obs::TraceEvent("core.done")
                       .Add("initial_facts", initial_facts)
                       .Add("core_facts", final_facts)
                       .Add("iterations", run.iterations)
                       .Add("attempts", run.retraction_attempts)
                       .Add("folds", run.successful_folds)
                       .Add("us", run.micros));
  }
}

}  // namespace

Result<Instance> ComputeCore(const Instance& instance,
                             const HomomorphismOptions& options,
                             CoreStats* stats) {
  CoreStats run;
  obs::ScopedTimer timer;
  Instance current = instance;
  while (true) {
    ++run.iterations;
    RDX_ASSIGN_OR_RETURN(std::optional<Instance> smaller,
                         FindShrinkingImage(current, options, &run));
    if (!smaller.has_value()) {
      run.micros = timer.ElapsedMicros();
      PublishCoreStats(run, stats, instance.size(), current.size());
      return current;
    }
    current = *std::move(smaller);
  }
}

Result<bool> IsCore(const Instance& instance,
                    const HomomorphismOptions& options, CoreStats* stats) {
  CoreStats run;
  obs::ScopedTimer timer;
  ++run.iterations;
  RDX_ASSIGN_OR_RETURN(std::optional<Instance> smaller,
                       FindShrinkingImage(instance, options, &run));
  run.micros = timer.ElapsedMicros();
  PublishCoreStats(run, stats, instance.size(),
                   smaller.has_value() ? smaller->size() : instance.size());
  return !smaller.has_value();
}

}  // namespace rdx
