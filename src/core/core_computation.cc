#include "core/core_computation.h"

namespace rdx {
namespace {

// Searches for an endomorphism of `instance` whose image misses at least one
// fact. Returns the (strictly smaller) image if found.
Result<std::optional<Instance>> FindShrinkingImage(
    const Instance& instance, const HomomorphismOptions& options) {
  for (const Fact& f : instance.facts()) {
    // A ground fact maps to itself under every homomorphism, so it can
    // never be dropped.
    if (f.IsGround()) continue;
    Instance target = instance;
    target.RemoveFact(f);
    RDX_ASSIGN_OR_RETURN(std::optional<ValueMap> h,
                         FindHomomorphism(instance, target, {}, options));
    if (h.has_value()) {
      // h maps into a proper subinstance, so its image is strictly smaller
      // and homomorphically equivalent (image ⊆ instance → image).
      return std::optional<Instance>(instance.Apply(*h));
    }
  }
  return std::optional<Instance>();
}

}  // namespace

Result<Instance> ComputeCore(const Instance& instance,
                             const HomomorphismOptions& options) {
  Instance current = instance;
  while (true) {
    RDX_ASSIGN_OR_RETURN(std::optional<Instance> smaller,
                         FindShrinkingImage(current, options));
    if (!smaller.has_value()) return current;
    current = *std::move(smaller);
  }
}

Result<bool> IsCore(const Instance& instance,
                    const HomomorphismOptions& options) {
  RDX_ASSIGN_OR_RETURN(std::optional<Instance> smaller,
                       FindShrinkingImage(instance, options));
  return !smaller.has_value();
}

}  // namespace rdx
