#include "core/core_computation.h"

#include <algorithm>
#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "base/attribution.h"
#include "base/metrics.h"
#include "base/parallel_for.h"
#include "base/spans.h"
#include "base/strings.h"
#include "base/trace.h"
#include "core/blocks.h"
#include "core/fact_index.h"

namespace rdx {
namespace {

// Adds an attempt-local HomomorphismStats into the caller's accumulator
// (the accumulator pointer is not thread-safe; raced attempts record
// locally and only the ones the sequential scan would have made are
// merged, so accumulated totals stay deterministic).
void MergeHomStats(const HomomorphismStats& run,
                   HomomorphismStats* accumulator) {
  if (accumulator == nullptr) return;
  accumulator->searches += run.searches;
  accumulator->steps += run.steps;
  accumulator->candidate_pairs += run.candidate_pairs;
  accumulator->backtracks += run.backtracks;
  accumulator->domain_filter_prunes += run.domain_filter_prunes;
  accumulator->found += run.found;
  accumulator->micros += run.micros;
}

// ---------------------------------------------------------------------------
// Legacy whole-instance engine (CoreOptions::use_blocks = false).
// ---------------------------------------------------------------------------

// Searches for an endomorphism of `instance` whose image misses at least one
// fact. Returns the (strictly smaller) image if found. Counts every
// candidate fact tried into `run`.
//
// With options.num_threads > 1 the independent retraction attempts race in
// chunks of num_threads; the winner is the lowest candidate index whose
// removal admits a homomorphism — exactly the fold the sequential scan
// performs, so the fold sequence (and thus the core) is identical for
// every thread count. Losing attempts past the winner are speculative:
// their stats are dropped from the accumulator, though the process-wide
// hom.* counters do see them.
Result<std::optional<Instance>> FindShrinkingImage(
    const Instance& instance, const HomomorphismOptions& options,
    CoreStats* run) {
  // Ground facts map to themselves under every homomorphism, so they can
  // never be dropped.
  std::vector<const Fact*> candidates;
  for (const Fact& f : instance.facts()) {
    if (!f.IsGround()) candidates.push_back(&f);
  }

  if (options.num_threads <= 1 || candidates.size() <= 1) {
    for (const Fact* f : candidates) {
      ++run->retraction_attempts;
      Instance target = instance;
      target.RemoveFact(*f);
      RDX_ASSIGN_OR_RETURN(std::optional<ValueMap> h,
                           FindHomomorphism(instance, target, {}, options));
      if (h.has_value()) {
        // h maps into a proper subinstance, so its image is strictly
        // smaller and homomorphically equivalent (image ⊆ instance →
        // image).
        ++run->successful_folds;
        return std::optional<Instance>(instance.Apply(*h));
      }
    }
    return std::optional<Instance>();
  }

  struct Attempt {
    std::optional<ValueMap> h;
    HomomorphismStats hom_run;
    Status status = Status::OK();
  };
  const std::size_t chunk = options.num_threads;
  for (std::size_t base = 0; base < candidates.size(); base += chunk) {
    const std::size_t count = std::min(chunk, candidates.size() - base);
    std::vector<Attempt> attempts(count);
    par::ParallelFor(options.num_threads, count, [&](std::size_t k) {
      Attempt& attempt = attempts[k];
      HomomorphismOptions task_options = options;
      task_options.num_threads = 1;
      task_options.stats = &attempt.hom_run;
      Instance target = instance;
      target.RemoveFact(*candidates[base + k]);
      Result<std::optional<ValueMap>> h =
          FindHomomorphism(instance, target, {}, task_options);
      if (h.ok()) {
        attempt.h = *std::move(h);
      } else {
        attempt.status = h.status();
      }
    });
    for (std::size_t k = 0; k < count; ++k) {
      ++run->retraction_attempts;
      MergeHomStats(attempts[k].hom_run, options.stats);
      RDX_RETURN_IF_ERROR(attempts[k].status);
      if (attempts[k].h.has_value()) {
        ++run->successful_folds;
        return std::optional<Instance>(instance.Apply(*attempts[k].h));
      }
    }
  }
  return std::optional<Instance>();
}

// ---------------------------------------------------------------------------
// Block-decomposed engine (CoreOptions::use_blocks = true, the default).
//
// The instance splits into ground facts plus null-blocks (core/blocks.h).
// A retraction dropping fact f exists iff f's own block maps into the
// alive instance minus f — every other block can stay put under the
// identity — so each attempt searches from one small block instead of the
// whole instance, against the shared FactIndex with dead facts masked out
// (no per-attempt copy or index rebuild).
//
// The engine runs in rounds. Each round: (1) discovery — every active
// block independently scans its candidates in order against the
// round-start alive set and reports the first droppable fact with its
// witness homomorphism (blocks are rdx::par units; the scan within a
// block races in chunks like the legacy engine); (2) application — the
// proposals are applied sequentially in ascending block order, each
// validated against the current alive set (an earlier application this
// round may have killed a fact the witness maps onto; such a proposal is
// dropped and the block retries next round). The first applied proposal
// is always valid, so every round with a proposal strictly shrinks the
// instance and the loop terminates.
//
// Memoization: a failed attempt (block, f) stays failed while the block's
// residue is unchanged — homomorphism existence is monotone in the target
// and the alive set only ever shrinks, so re-searching cannot succeed.
// Failed facts are recorded per block and the set is cleared when that
// block folds (the only event that changes its residue), so the final
// no-progress round costs one memo lookup per candidate instead of one
// search. Only failures the sequential scan would have made are memoized
// (not speculative race losers), keeping every stat identical across
// thread counts.
// ---------------------------------------------------------------------------

struct BlockState {
  std::vector<const Fact*> residue;  // facts of this block still alive
  std::vector<uint32_t> residue_ordinals;  // parallel: index ordinals
  std::unordered_set<uint32_t> failed;  // memoized failed drops (ordinals)
  // Per-run trace numbers. `attempts`, `memo_hits`, `folds`, and
  // `hom_searches` count only work the sequential scan would have made,
  // so they are identical for every thread count; `micros` (discovery
  // wall time on behalf of this block) is measured only when tracing or
  // attribution is enabled and stays 0 otherwise.
  uint64_t initial_size = 0;
  uint64_t attempts = 0;
  uint64_t memo_hits = 0;
  uint64_t folds = 0;
  uint64_t hom_searches = 0;
  uint64_t micros = 0;
};

struct FoldProposal {
  const Fact* drop = nullptr;
  ValueMap h;  // witness: block residue → alive \ {drop}
};

// One block's discovery result for one round.
struct BlockRound {
  std::optional<FoldProposal> proposal;
  std::vector<uint32_t> new_failures;  // ordinals failed before the winner
  HomomorphismStats hom_run;
  uint64_t attempts = 0;
  uint64_t memo_hits = 0;
  uint64_t micros = 0;  // discovery wall time (only when attributed)
  Status status = Status::OK();
};

// Scans `block`'s candidates in residue order for a droppable fact.
// Reads only round-start state (block + mask are not mutated), so
// discoveries for distinct blocks can run concurrently.
BlockRound DiscoverFold(const BlockState& block, const FactIndex& index,
                        const FactMask& mask, const CoreOptions& options) {
  BlockRound round;
  std::optional<obs::ScopedTimer> timer;
  if (obs::AttributionEnabled() || obs::TracingEnabled()) {
    // NRVO constructs `round` in the return slot; the timer is destroyed
    // first (reverse declaration order), so every return path gets timed.
    timer.emplace(nullptr, &round.micros);
  }
  std::vector<const Fact*> candidates;
  std::vector<uint32_t> candidate_ordinals;
  candidates.reserve(block.residue.size());
  candidate_ordinals.reserve(block.residue.size());
  for (std::size_t i = 0; i < block.residue.size(); ++i) {
    const uint32_t ordinal = block.residue_ordinals[i];
    if (options.memoize && block.failed.count(ordinal) > 0) {
      ++round.memo_hits;
      continue;
    }
    candidates.push_back(block.residue[i]);
    candidate_ordinals.push_back(ordinal);
  }

  HomomorphismOptions hom = options.hom;
  if (hom.num_threads <= 1 || candidates.size() <= 1) {
    hom.stats = &round.hom_run;
    for (std::size_t k = 0; k < candidates.size(); ++k) {
      ++round.attempts;
      Result<std::optional<ValueMap>> h = FindHomomorphismMasked(
          block.residue, index, &mask, candidate_ordinals[k], hom);
      if (!h.ok()) {
        round.status = h.status();
        return round;
      }
      if (h->has_value()) {
        round.proposal = FoldProposal{candidates[k], *std::move(*h)};
        return round;
      }
      round.new_failures.push_back(candidate_ordinals[k]);
    }
    return round;
  }

  // Race the candidate scan in chunks of num_threads, lowest index wins;
  // stats of speculative losers past the winner are dropped (only the
  // process-wide hom.* counters see them), and their failures are not
  // memoized.
  struct Attempt {
    std::optional<ValueMap> h;
    HomomorphismStats hom_run;
    Status status = Status::OK();
  };
  const std::size_t chunk = hom.num_threads;
  for (std::size_t base = 0; base < candidates.size(); base += chunk) {
    const std::size_t count = std::min(chunk, candidates.size() - base);
    std::vector<Attempt> attempts(count);
    par::ParallelFor(hom.num_threads, count, [&](std::size_t k) {
      Attempt& attempt = attempts[k];
      HomomorphismOptions task_options = options.hom;
      task_options.num_threads = 1;
      task_options.stats = &attempt.hom_run;
      Result<std::optional<ValueMap>> h = FindHomomorphismMasked(
          block.residue, index, &mask, candidate_ordinals[base + k],
          task_options);
      if (h.ok()) {
        attempt.h = *std::move(h);
      } else {
        attempt.status = h.status();
      }
    });
    for (std::size_t k = 0; k < count; ++k) {
      ++round.attempts;
      MergeHomStats(attempts[k].hom_run, &round.hom_run);
      if (!attempts[k].status.ok()) {
        round.status = attempts[k].status;
        return round;
      }
      if (attempts[k].h.has_value()) {
        round.proposal = FoldProposal{candidates[base + k],
                                      *std::move(attempts[k].h)};
        return round;
      }
      round.new_failures.push_back(candidate_ordinals[base + k]);
    }
  }
  return round;
}

// The image fact h(f): every argument mapped through h (identity where h
// is not defined), same relation.
Fact ApplyToFact(const Fact& f, const ValueMap& h) {
  std::vector<Value> args;
  args.reserve(f.args().size());
  for (const Value& v : f.args()) {
    auto it = h.find(v);
    args.push_back(it == h.end() ? v : it->second);
  }
  return Fact::MustMake(f.relation(), std::move(args));
}

class BlockedCoreEngine {
 public:
  // `decomp` must be the decomposition of `instance` (moved in so the
  // callers' ground fast path can decompose without paying for the index
  // and pointer map built here).
  BlockedCoreEngine(const Instance& instance, BlockDecomposition decomp,
                    const CoreOptions& options, CoreStats* run)
      : instance_(instance), options_(options), run_(run), index_(instance) {
    run_->blocks = decomp.blocks.size();
    // Ordinal of a fact = its position in the instance's insertion order,
    // which is exactly the order FactIndex assigned (it indexed the same
    // deque). The pointer map translates the decomposition's block
    // members; the value map resolves fold images in ApplyProposal.
    std::unordered_map<const Fact*, uint32_t> ordinal_of;
    ordinal_of.reserve(instance.size());
    fact_ordinals_.reserve(instance.size());
    uint32_t ordinal = 0;
    for (const Fact& f : instance.facts()) {
      ordinal_of.emplace(&f, ordinal);
      fact_ordinals_.emplace(f, ordinal);
      ++ordinal;
    }
    blocks_.resize(decomp.blocks.size());
    for (std::size_t b = 0; b < decomp.blocks.size(); ++b) {
      blocks_[b].residue = std::move(decomp.blocks[b]);
      blocks_[b].initial_size = blocks_[b].residue.size();
      blocks_[b].residue_ordinals.reserve(blocks_[b].residue.size());
      for (const Fact* f : blocks_[b].residue) {
        blocks_[b].residue_ordinals.push_back(ordinal_of.at(f));
      }
    }
  }

  // One round: parallel discovery over the blocks with facts left, then
  // ordered validated application. Returns whether any proposal was
  // applied; a round applying nothing is the fixpoint (every candidate of
  // every block is now a memoized failure).
  Result<bool> RunRound() {
    ++run_->iterations;
    std::vector<std::size_t> active;
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
      if (!blocks_[b].residue.empty()) active.push_back(b);
    }
    if (active.empty()) return false;

    obs::Span round_span("core.round");
    round_span.Arg("round", run_->iterations).Arg("active_blocks",
                                                  active.size());
    std::vector<BlockRound> rounds = par::ParallelMap<BlockRound>(
        options_.hom.num_threads, active.size(), [&](std::size_t k) {
          // Pool-executed: the span adopts the scheduling span (the
          // core.round above) as its parent via rdx::par.
          obs::Span block_span("core.block");
          block_span.Arg("block", active[k]);
          BlockRound r = DiscoverFold(blocks_[active[k]], index_, mask_,
                                      options_);
          block_span.Arg("attempts", r.attempts)
              .Arg("found", r.proposal.has_value() ? 1 : 0);
          return r;
        });

    // Merge stats and memoized failures in block order (deterministic for
    // every thread count), then apply the surviving proposals.
    bool applied_any = false;
    for (std::size_t k = 0; k < active.size(); ++k) {
      BlockState& block = blocks_[active[k]];
      BlockRound& round = rounds[k];
      block.attempts += round.attempts;
      block.memo_hits += round.memo_hits;
      block.hom_searches += round.hom_run.searches;
      block.micros += round.micros;
      run_->retraction_attempts += round.attempts;
      run_->masked_attempts += round.attempts;
      run_->memo_hits += round.memo_hits;
      MergeHomStats(round.hom_run, options_.hom.stats);
      RDX_RETURN_IF_ERROR(round.status);
      for (uint32_t ordinal : round.new_failures) block.failed.insert(ordinal);
      if (round.proposal.has_value() &&
          ApplyProposal(block, *round.proposal)) {
        applied_any = true;
      }
    }
    round_span.Arg("applied", applied_any ? 1 : 0);
    return applied_any;
  }

  // Surviving facts, in instance insertion order.
  Instance Materialize() const {
    std::vector<const Fact*> alive;
    uint32_t ordinal = 0;
    for (const Fact& f : instance_.facts()) {
      if (mask_.alive(ordinal)) alive.push_back(&f);
      ++ordinal;
    }
    return Instance::FromFactPointers(alive);
  }

  uint64_t alive_size() const { return instance_.size() - mask_.dead_count(); }

  const std::vector<BlockState>& blocks() const { return blocks_; }

 private:
  // Validates the witness against the current alive set and, if still
  // valid, kills the residue facts outside its image. Returns whether the
  // fold was applied.
  bool ApplyProposal(BlockState& block, const FoldProposal& proposal) {
    std::unordered_set<uint32_t> image;
    image.reserve(block.residue.size());
    for (const Fact* f : block.residue) {
      auto it = fact_ordinals_.find(ApplyToFact(*f, proposal.h));
      if (it == fact_ordinals_.end() || !mask_.alive(it->second)) {
        // An application earlier this round killed a fact the witness
        // maps onto; drop the proposal, the block retries next round.
        return false;
      }
      image.insert(it->second);
    }
    std::vector<const Fact*> survivors;
    std::vector<uint32_t> survivor_ordinals;
    survivors.reserve(block.residue.size());
    survivor_ordinals.reserve(block.residue.size());
    for (std::size_t i = 0; i < block.residue.size(); ++i) {
      const uint32_t ordinal = block.residue_ordinals[i];
      if (image.count(ordinal) > 0) {
        survivors.push_back(block.residue[i]);
        survivor_ordinals.push_back(ordinal);
      } else {
        mask_.Kill(ordinal);
      }
    }
    block.residue = std::move(survivors);
    block.residue_ordinals = std::move(survivor_ordinals);
    block.failed.clear();
    ++block.folds;
    ++run_->successful_folds;
    return true;
  }

  const Instance& instance_;
  const CoreOptions& options_;
  CoreStats* run_;
  FactIndex index_;
  FactMask mask_;
  std::vector<BlockState> blocks_;
  std::unordered_map<Fact, uint32_t, FactHash> fact_ordinals_;
};

// Batched publish of one run's totals to the "core.*" counters, the
// caller's accumulator (if any), and the trace sink.
void PublishCoreStats(const CoreStats& run, CoreStats* accumulator,
                      uint64_t initial_facts, uint64_t final_facts,
                      const std::vector<BlockState>* blocks) {
  static obs::Counter& runs = obs::Counter::Get("core.runs");
  static obs::Counter& iterations = obs::Counter::Get("core.iterations");
  static obs::Counter& attempts =
      obs::Counter::Get("core.retraction_attempts");
  static obs::Counter& folds = obs::Counter::Get("core.successful_folds");
  static obs::Counter& block_count = obs::Counter::Get("core.blocks");
  static obs::Counter& masked = obs::Counter::Get("core.masked_attempts");
  static obs::Counter& memo = obs::Counter::Get("core.memo_hits");
  static obs::Counter& us = obs::Counter::Get("core.us");
  runs.Increment();
  iterations.Add(run.iterations);
  attempts.Add(run.retraction_attempts);
  folds.Add(run.successful_folds);
  block_count.Add(run.blocks);
  masked.Add(run.masked_attempts);
  memo.Add(run.memo_hits);
  us.Add(run.micros);
  if (accumulator != nullptr) {
    accumulator->iterations += run.iterations;
    accumulator->retraction_attempts += run.retraction_attempts;
    accumulator->successful_folds += run.successful_folds;
    accumulator->blocks += run.blocks;
    accumulator->masked_attempts += run.masked_attempts;
    accumulator->memo_hits += run.memo_hits;
    accumulator->micros += run.micros;
  }
  if (blocks != nullptr && obs::AttributionEnabled()) {
    for (std::size_t b = 0; b < blocks->size(); ++b) {
      const BlockState& block = (*blocks)[b];
      obs::Attribution& row =
          obs::Attribution::Get("core.block", StrCat("block ", b));
      row.AddTimeMicros(block.micros);
      row.AddFired(block.folds);
      row.AddFacts(block.initial_size - block.residue.size());
      row.AddHomAttempts(block.hom_searches);
    }
  }
  if (obs::TracingEnabled()) {
    if (blocks != nullptr) {
      for (std::size_t b = 0; b < blocks->size(); ++b) {
        const BlockState& block = (*blocks)[b];
        obs::EmitTrace(obs::TraceEvent("core.block")
                           .Add("block", b)
                           .Add("facts", block.initial_size)
                           .Add("core_facts", block.residue.size())
                           .Add("fingerprint", BlockFingerprint(block.residue))
                           .Add("attempts", block.attempts)
                           .Add("folds", block.folds)
                           .Add("memo_hits", block.memo_hits)
                           .Add("hom_searches", block.hom_searches)
                           .Add("us", block.micros));
      }
    }
    obs::EmitTrace(obs::TraceEvent("core.done")
                       .Add("initial_facts", initial_facts)
                       .Add("core_facts", final_facts)
                       .Add("iterations", run.iterations)
                       .Add("attempts", run.retraction_attempts)
                       .Add("folds", run.successful_folds)
                       .Add("blocks", run.blocks)
                       .Add("masked_attempts", run.masked_attempts)
                       .Add("memo_hits", run.memo_hits)
                       .Add("us", run.micros));
  }
}

}  // namespace

Result<Instance> ComputeCore(const Instance& instance,
                             const CoreOptions& options, CoreStats* stats) {
  CoreStats run;
  obs::Span run_span("core");
  run_span.Arg("facts", instance.size());
  obs::ScopedTimer timer;
  if (!options.use_blocks) {
    Instance current = instance;
    while (true) {
      ++run.iterations;
      RDX_ASSIGN_OR_RETURN(std::optional<Instance> smaller,
                           FindShrinkingImage(current, options.hom, &run));
      if (!smaller.has_value()) {
        run.micros = timer.ElapsedMicros();
        PublishCoreStats(run, stats, instance.size(), current.size(),
                         /*blocks=*/nullptr);
        return current;
      }
      current = *std::move(smaller);
    }
  }

  BlockDecomposition decomp = DecomposeIntoBlocks(instance);
  if (decomp.blocks.empty()) {
    // Every fact is ground, hence fixed by every endomorphism: the
    // instance is its own core. Skips the index and pointer-map builds.
    run.iterations = 1;
    run.micros = timer.ElapsedMicros();
    PublishCoreStats(run, stats, instance.size(), instance.size(),
                     /*blocks=*/nullptr);
    return instance;
  }
  BlockedCoreEngine engine(instance, std::move(decomp), options, &run);
  while (true) {
    RDX_ASSIGN_OR_RETURN(bool applied, engine.RunRound());
    if (!applied) break;
  }
  Instance core = engine.Materialize();
  run.micros = timer.ElapsedMicros();
  PublishCoreStats(run, stats, instance.size(), core.size(),
                   &engine.blocks());
  run_span.Arg("core_facts", core.size()).Arg("folds", run.successful_folds);
  return core;
}

Result<Instance> ComputeCore(const Instance& instance,
                             const HomomorphismOptions& options,
                             CoreStats* stats) {
  CoreOptions core_options;
  core_options.hom = options;
  return ComputeCore(instance, core_options, stats);
}

Result<bool> IsCore(const Instance& instance, const CoreOptions& options,
                    CoreStats* stats) {
  CoreStats run;
  obs::Span run_span("core.is_core");
  run_span.Arg("facts", instance.size());
  obs::ScopedTimer timer;
  if (!options.use_blocks) {
    ++run.iterations;
    RDX_ASSIGN_OR_RETURN(std::optional<Instance> smaller,
                         FindShrinkingImage(instance, options.hom, &run));
    run.micros = timer.ElapsedMicros();
    PublishCoreStats(run, stats, instance.size(),
                     smaller.has_value() ? smaller->size() : instance.size(),
                     /*blocks=*/nullptr);
    return !smaller.has_value();
  }

  // One discovery round decides: the instance is a core iff no block has a
  // droppable fact.
  BlockDecomposition decomp = DecomposeIntoBlocks(instance);
  if (decomp.blocks.empty()) {
    run.iterations = 1;
    run.micros = timer.ElapsedMicros();
    PublishCoreStats(run, stats, instance.size(), instance.size(),
                     /*blocks=*/nullptr);
    return true;
  }
  BlockedCoreEngine engine(instance, std::move(decomp), options, &run);
  RDX_ASSIGN_OR_RETURN(bool shrank, engine.RunRound());
  run.micros = timer.ElapsedMicros();
  PublishCoreStats(run, stats, instance.size(), engine.alive_size(),
                   &engine.blocks());
  return !shrank;
}

Result<bool> IsCore(const Instance& instance,
                    const HomomorphismOptions& options, CoreStats* stats) {
  CoreOptions core_options;
  core_options.hom = options;
  return IsCore(instance, core_options, stats);
}

}  // namespace rdx
