#include "core/core_computation.h"

#include "base/metrics.h"
#include "base/trace.h"

namespace rdx {
namespace {

// Searches for an endomorphism of `instance` whose image misses at least one
// fact. Returns the (strictly smaller) image if found. Counts every
// candidate fact tried into `run`.
Result<std::optional<Instance>> FindShrinkingImage(
    const Instance& instance, const HomomorphismOptions& options,
    CoreStats* run) {
  for (const Fact& f : instance.facts()) {
    // A ground fact maps to itself under every homomorphism, so it can
    // never be dropped.
    if (f.IsGround()) continue;
    ++run->retraction_attempts;
    Instance target = instance;
    target.RemoveFact(f);
    RDX_ASSIGN_OR_RETURN(std::optional<ValueMap> h,
                         FindHomomorphism(instance, target, {}, options));
    if (h.has_value()) {
      // h maps into a proper subinstance, so its image is strictly smaller
      // and homomorphically equivalent (image ⊆ instance → image).
      ++run->successful_folds;
      return std::optional<Instance>(instance.Apply(*h));
    }
  }
  return std::optional<Instance>();
}

// Batched publish of one run's totals to the "core.*" counters, the
// caller's accumulator (if any), and the trace sink.
void PublishCoreStats(const CoreStats& run, CoreStats* accumulator,
                      uint64_t initial_facts, uint64_t final_facts) {
  static obs::Counter& runs = obs::Counter::Get("core.runs");
  static obs::Counter& iterations = obs::Counter::Get("core.iterations");
  static obs::Counter& attempts =
      obs::Counter::Get("core.retraction_attempts");
  static obs::Counter& folds = obs::Counter::Get("core.successful_folds");
  static obs::Counter& us = obs::Counter::Get("core.us");
  runs.Increment();
  iterations.Add(run.iterations);
  attempts.Add(run.retraction_attempts);
  folds.Add(run.successful_folds);
  us.Add(run.micros);
  if (accumulator != nullptr) {
    accumulator->iterations += run.iterations;
    accumulator->retraction_attempts += run.retraction_attempts;
    accumulator->successful_folds += run.successful_folds;
    accumulator->micros += run.micros;
  }
  if (obs::TracingEnabled()) {
    obs::EmitTrace(obs::TraceEvent("core.done")
                       .Add("initial_facts", initial_facts)
                       .Add("core_facts", final_facts)
                       .Add("iterations", run.iterations)
                       .Add("attempts", run.retraction_attempts)
                       .Add("folds", run.successful_folds)
                       .Add("us", run.micros));
  }
}

}  // namespace

Result<Instance> ComputeCore(const Instance& instance,
                             const HomomorphismOptions& options,
                             CoreStats* stats) {
  CoreStats run;
  obs::ScopedTimer timer;
  Instance current = instance;
  while (true) {
    ++run.iterations;
    RDX_ASSIGN_OR_RETURN(std::optional<Instance> smaller,
                         FindShrinkingImage(current, options, &run));
    if (!smaller.has_value()) {
      run.micros = timer.ElapsedMicros();
      PublishCoreStats(run, stats, instance.size(), current.size());
      return current;
    }
    current = *std::move(smaller);
  }
}

Result<bool> IsCore(const Instance& instance,
                    const HomomorphismOptions& options, CoreStats* stats) {
  CoreStats run;
  obs::ScopedTimer timer;
  ++run.iterations;
  RDX_ASSIGN_OR_RETURN(std::optional<Instance> smaller,
                       FindShrinkingImage(instance, options, &run));
  run.micros = timer.ElapsedMicros();
  PublishCoreStats(run, stats, instance.size(),
                   smaller.has_value() ? smaller->size() : instance.size());
  return !smaller.has_value();
}

}  // namespace rdx
