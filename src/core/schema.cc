#include "core/schema.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>

#include "base/strings.h"

namespace rdx {
namespace {

struct RelationTables {
  std::mutex mu;
  std::vector<std::string> names;
  std::vector<uint32_t> arities;
  std::unordered_map<std::string, uint32_t> ids;
};

RelationTables& Tables() {
  static RelationTables& tables = *new RelationTables();
  return tables;
}

}  // namespace

Result<Relation> Relation::Intern(std::string_view name, uint32_t arity) {
  if (!IsIdentifier(name)) {
    return Status::InvalidArgument(
        StrCat("relation name '", name, "' is not an identifier"));
  }
  if (arity == 0) {
    return Status::InvalidArgument(
        StrCat("relation '", name, "' must have positive arity"));
  }
  RelationTables& t = Tables();
  std::lock_guard<std::mutex> lock(t.mu);
  std::string key(name);
  auto it = t.ids.find(key);
  if (it != t.ids.end()) {
    if (t.arities[it->second] != arity) {
      return Status::InvalidArgument(
          StrCat("relation '", name, "' already interned with arity ",
                 t.arities[it->second], ", requested ", arity));
    }
    return Relation(it->second);
  }
  uint32_t id = static_cast<uint32_t>(t.names.size());
  t.names.push_back(key);
  t.arities.push_back(arity);
  t.ids.emplace(std::move(key), id);
  return Relation(id);
}

Relation Relation::MustIntern(std::string_view name, uint32_t arity) {
  Result<Relation> r = Intern(name, arity);
  if (!r.ok()) {
    std::abort();
  }
  return *r;
}

Result<Relation> Relation::Lookup(std::string_view name) {
  RelationTables& t = Tables();
  std::lock_guard<std::mutex> lock(t.mu);
  auto it = t.ids.find(std::string(name));
  if (it == t.ids.end()) {
    return Status::NotFound(StrCat("relation '", name, "' not interned"));
  }
  return Relation(it->second);
}

const std::string& Relation::name() const {
  RelationTables& t = Tables();
  std::lock_guard<std::mutex> lock(t.mu);
  return t.names[id_];
}

uint32_t Relation::arity() const {
  RelationTables& t = Tables();
  std::lock_guard<std::mutex> lock(t.mu);
  return t.arities[id_];
}

Result<Schema> Schema::Make(
    const std::vector<std::pair<std::string, uint32_t>>& relations) {
  Schema schema;
  for (const auto& [name, arity] : relations) {
    RDX_ASSIGN_OR_RETURN(Relation rel, Relation::Intern(name, arity));
    RDX_RETURN_IF_ERROR(schema.AddRelation(rel));
  }
  return schema;
}

Schema Schema::MustMake(
    const std::vector<std::pair<std::string, uint32_t>>& relations) {
  Result<Schema> s = Make(relations);
  if (!s.ok()) {
    std::abort();
  }
  return *std::move(s);
}

Status Schema::AddRelation(Relation relation) {
  if (Contains(relation)) {
    return Status::InvalidArgument(
        StrCat("relation '", relation.name(), "' already in schema"));
  }
  relations_.push_back(relation);
  return Status::OK();
}

bool Schema::Contains(Relation relation) const {
  return std::find(relations_.begin(), relations_.end(), relation) !=
         relations_.end();
}

bool Schema::DisjointFrom(const Schema& other) const {
  for (Relation r : relations_) {
    if (other.Contains(r)) return false;
  }
  return true;
}

Schema Schema::Union(const Schema& a, const Schema& b) {
  Schema out = a;
  for (Relation r : b.relations()) {
    if (!out.Contains(r)) out.relations_.push_back(r);
  }
  return out;
}

std::string Schema::ToString() const {
  return StrCat("{",
                JoinMapped(relations_, ", ",
                           [](Relation r) {
                             return StrCat(r.name(), "/", r.arity());
                           }),
                "}");
}

}  // namespace rdx
