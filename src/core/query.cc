#include "core/query.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "base/strings.h"
#include "core/dependency_parser.h"

namespace rdx {

Result<ConjunctiveQuery> ConjunctiveQuery::Make(
    std::vector<Variable> head_vars, std::vector<Atom> body) {
  if (body.empty()) {
    return Status::InvalidArgument("query body must be non-empty");
  }
  std::vector<Variable> bound;
  bool has_relational = false;
  for (const Atom& a : body) {
    if (!a.IsRelational()) continue;
    has_relational = true;
    for (Variable v : a.Vars()) {
      if (std::find(bound.begin(), bound.end(), v) == bound.end()) {
        bound.push_back(v);
      }
    }
  }
  if (!has_relational) {
    return Status::InvalidArgument(
        "query body must contain a relational atom");
  }
  for (Variable v : head_vars) {
    if (std::find(bound.begin(), bound.end(), v) == bound.end()) {
      return Status::InvalidArgument(
          StrCat("answer variable '", v.name(),
                 "' does not occur in a relational body atom"));
    }
  }
  for (const Atom& a : body) {
    if (a.IsRelational()) continue;
    for (Variable v : a.Vars()) {
      if (std::find(bound.begin(), bound.end(), v) == bound.end()) {
        return Status::InvalidArgument(
            StrCat("builtin atom '", a.ToString(),
                   "' uses variable not bound by a relational atom"));
      }
    }
  }
  return ConjunctiveQuery(std::move(head_vars), std::move(body));
}

Result<ConjunctiveQuery> ConjunctiveQuery::Parse(std::string_view text) {
  // Reuse the dependency parser: "q(x,y) :- body" is parsed by rewriting
  // to "body -> RdxQueryHead<k>(x,y)". The synthetic head relation's name
  // carries the arity so that queries of different arities never clash in
  // the process-wide relation registry (the user's head name is ignored —
  // it is pure syntax).
  std::size_t sep = text.find(":-");
  if (sep == std::string_view::npos) {
    return Status::InvalidArgument("query must contain ':-'");
  }
  std::string_view head_text = text.substr(0, sep);
  std::size_t open = head_text.find('(');
  std::size_t close = head_text.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    return Status::InvalidArgument("query head must be name(vars)");
  }
  std::string_view args = head_text.substr(open + 1, close - open - 1);
  std::size_t arity = 1;
  for (char c : args) {
    if (c == ',') ++arity;
  }
  std::string rewritten =
      StrCat(std::string(text.substr(sep + 2)), " -> RdxQueryHead", arity,
             "(", std::string(args), ")");
  RDX_ASSIGN_OR_RETURN(Dependency dep, ParseDependency(rewritten));
  if (dep.disjuncts().size() != 1 || dep.disjuncts()[0].size() != 1) {
    return Status::InvalidArgument("query head must be a single atom");
  }
  const Atom& head = dep.disjuncts()[0][0];
  std::vector<Variable> head_vars;
  for (const Term& t : head.terms()) {
    if (!t.IsVariable()) {
      return Status::InvalidArgument(
          "query head arguments must be variables");
    }
    head_vars.push_back(t.variable());
  }
  return Make(std::move(head_vars), dep.body());
}

ConjunctiveQuery ConjunctiveQuery::MustParse(std::string_view text) {
  Result<ConjunctiveQuery> q = Parse(text);
  if (!q.ok()) {
    std::fprintf(stderr, "MustParse query \"%.*s\": %s\n",
                 static_cast<int>(text.size()), text.data(),
                 q.status().ToString().c_str());
    std::abort();
  }
  return *std::move(q);
}

Result<TupleSet> ConjunctiveQuery::Eval(const Instance& instance,
                                        const MatchOptions& options) const {
  TupleSet answers;
  Status status = EnumerateMatches(
      body_, instance,
      [&](const Assignment& assignment) {
        Tuple tuple;
        tuple.reserve(head_vars_.size());
        for (Variable v : head_vars_) {
          tuple.push_back(assignment.at(v));
        }
        answers.insert(std::move(tuple));
        return true;
      },
      options);
  RDX_RETURN_IF_ERROR(status);
  return answers;
}

std::string ConjunctiveQuery::ToString() const {
  return StrCat("q(",
                JoinMapped(head_vars_, ", ",
                           [](Variable v) { return v.name(); }),
                ") :- ", AtomsToString(body_));
}

TupleSet DiscardTuplesWithNulls(const TupleSet& tuples) {
  TupleSet out;
  for (const Tuple& t : tuples) {
    bool has_null = false;
    for (const Value& v : t) {
      if (v.IsNull()) {
        has_null = true;
        break;
      }
    }
    if (!has_null) out.insert(t);
  }
  return out;
}

TupleSet IntersectAll(const std::vector<TupleSet>& sets) {
  if (sets.empty()) return {};
  TupleSet out = sets[0];
  for (std::size_t i = 1; i < sets.size(); ++i) {
    TupleSet next;
    for (const Tuple& t : out) {
      if (sets[i].count(t) > 0) next.insert(t);
    }
    out = std::move(next);
  }
  return out;
}

std::string TupleSetToString(const TupleSet& tuples) {
  // Sorted by rendered text, not by the set's Value-id order: interned
  // ids depend on the process's interning history, and this string is
  // byte-compared across processes (rdx_cli vs rdx_serve replies).
  std::vector<std::string> rendered;
  rendered.reserve(tuples.size());
  for (const Tuple& t : tuples) {
    rendered.push_back(StrCat(
        "(",
        JoinMapped(t, ", ",
                   [](const Value& v) { return v.ToString(); }),
        ")"));
  }
  std::sort(rendered.begin(), rendered.end());
  return StrCat("{", Join(rendered, ", "), "}");
}

}  // namespace rdx
