#include "core/blocks.h"

#include <numeric>
#include <unordered_map>

namespace rdx {
namespace {

// Disjoint-set forest over dense ids with path halving.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(std::size_t a, std::size_t b) {
    a = Find(a);
    b = Find(b);
    // Lower root wins so representatives stay stable in insertion order.
    if (a == b) return;
    if (a < b) {
      parent_[b] = a;
    } else {
      parent_[a] = b;
    }
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

BlockDecomposition DecomposeIntoBlocks(const Instance& instance) {
  BlockDecomposition out;
  // Dense ids for the non-ground facts, in insertion order.
  std::vector<const Fact*> null_facts;
  for (const Fact& f : instance.facts()) {
    if (f.IsGround()) {
      out.ground.push_back(&f);
    } else {
      null_facts.push_back(&f);
    }
  }
  if (null_facts.empty()) return out;

  UnionFind sets(null_facts.size());
  // Facts sharing a null are connected: union each fact with the previous
  // fact seen for every null it carries.
  std::unordered_map<Value, std::size_t, ValueHash> last_fact_with_null;
  for (std::size_t i = 0; i < null_facts.size(); ++i) {
    for (const Value& v : null_facts[i]->args()) {
      if (!v.IsNull()) continue;
      auto [it, inserted] = last_fact_with_null.try_emplace(v, i);
      if (!inserted) {
        sets.Union(it->second, i);
        it->second = i;
      }
    }
  }

  // Group by root; block order = order of each root's first fact.
  std::unordered_map<std::size_t, std::size_t> block_of_root;
  for (std::size_t i = 0; i < null_facts.size(); ++i) {
    std::size_t root = sets.Find(i);
    auto [it, inserted] =
        block_of_root.try_emplace(root, out.blocks.size());
    if (inserted) out.blocks.emplace_back();
    out.blocks[it->second].push_back(null_facts[i]);
  }
  return out;
}

uint64_t BlockFingerprint(const std::vector<const Fact*>& facts) {
  // XOR of fact hashes is order-insensitive; the seed keeps the empty
  // residue distinct from a zero-hash singleton.
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const Fact* f : facts) {
    h ^= static_cast<uint64_t>(f->Hash());
  }
  return h;
}

}  // namespace rdx
