#ifndef RDX_CORE_DEPENDENCY_H_
#define RDX_CORE_DEPENDENCY_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "core/atom.h"

namespace rdx {

/// Where a parsed object came from in its source text. Lines and columns
/// are 1-based; a zero line means "unknown" (e.g. a programmatically
/// constructed dependency).
struct SourceLocation {
  uint32_t line = 0;
  uint32_t column = 0;

  bool IsKnown() const { return line > 0; }

  /// "line 3, column 7", or "unknown location".
  std::string ToString() const;
};

/// A (disjunctive) tuple-generating dependency:
///
///   ∀x ( body(x)  →  ⋁_i ∃y_i head_i(x, y_i) )
///
/// where the body is a conjunction of relational atoms plus optional
/// built-in atoms (inequalities `t != t'` and `Constant(t)`), and each
/// disjunct head_i is a conjunction of relational atoms. Existential
/// variables are implicit: any head variable not occurring in the body.
///
/// This single class covers the paper's whole dependency zoo:
///  * s-t tgds                      — one disjunct, no builtins
///  * full s-t tgds                 — additionally no existential variables
///  * tgds with constants           — Constant atoms in the body
///  * disjunctive tgds              — several disjuncts
///  * disjunctive tgds w/ inequalities — inequality atoms in the body
class Dependency {
 public:
  /// Builds and validates a dependency. Requirements:
  ///  * the body contains at least one relational atom;
  ///  * every variable of a builtin body atom occurs in a relational body
  ///    atom (safety);
  ///  * there is at least one disjunct, and every disjunct is a non-empty
  ///    conjunction of relational atoms.
  static Result<Dependency> Make(std::vector<Atom> body,
                                 std::vector<std::vector<Atom>> disjuncts);

  /// Convenience for a plain (non-disjunctive) tgd body → head.
  static Result<Dependency> MakeTgd(std::vector<Atom> body,
                                    std::vector<Atom> head);

  /// Like Make/MakeTgd but abort on validation errors; for literals.
  static Dependency MustMake(std::vector<Atom> body,
                             std::vector<std::vector<Atom>> disjuncts);
  static Dependency MustMakeTgd(std::vector<Atom> body,
                                std::vector<Atom> head);

  const std::vector<Atom>& body() const { return body_; }
  const std::vector<std::vector<Atom>>& disjuncts() const {
    return disjuncts_;
  }

  /// The relational atoms of the body (excluding builtins).
  std::vector<Atom> RelationalBody() const;

  /// The builtin atoms of the body (inequalities and Constant checks).
  std::vector<Atom> BuiltinBody() const;

  /// Universal variables: those occurring in relational body atoms.
  const std::vector<Variable>& UniversalVars() const {
    return universal_vars_;
  }

  /// Existential variables of disjunct `i` (head vars not in the body).
  std::vector<Variable> ExistentialVars(std::size_t i) const;

  /// True if the dependency has a single disjunct and no builtin body atoms
  /// (a plain tgd, possibly with existentials).
  bool IsPlainTgd() const;

  /// True if no disjunct has existential variables.
  bool IsFull() const;

  bool HasDisjunction() const { return disjuncts_.size() > 1; }
  bool UsesInequalities() const;
  bool UsesConstantPredicate() const;

  /// Relations appearing in the body (resp. in some head disjunct).
  std::vector<Relation> BodyRelations() const;
  std::vector<Relation> HeadRelations() const;

  /// "P(x, y) -> EXISTS z: Q(x, z) & Q(z, y)" style rendering; disjuncts
  /// joined with " | ".
  std::string ToString() const;

  /// ToString plus the source location when one is known — the form error
  /// messages should cite: "P(x) -> Q(x) (at line 3, column 1)".
  std::string Describe() const;

  /// Source position of the dependency in the text it was parsed from.
  /// Defaults to unknown; ignored by operator== (two dependencies parsed
  /// from different lines still compare equal).
  const SourceLocation& location() const { return location_; }
  void set_location(const SourceLocation& location) { location_ = location; }

  /// Variables the source text declared with EXISTS, in declaration
  /// order. Unlike ExistentialVars (which derives existentials as
  /// head-vars-not-in-body), this preserves what the author *wrote*, so
  /// lints can flag declarations shadowed by a body occurrence. Empty for
  /// programmatically built dependencies. Ignored by operator==.
  const std::vector<Variable>& declared_existentials() const {
    return declared_existentials_;
  }
  void set_declared_existentials(std::vector<Variable> vars) {
    declared_existentials_ = std::move(vars);
  }

  friend bool operator==(const Dependency& a, const Dependency& b) {
    return a.body_ == b.body_ && a.disjuncts_ == b.disjuncts_;
  }

 private:
  Dependency(std::vector<Atom> body, std::vector<std::vector<Atom>> disjuncts,
             std::vector<Variable> universal_vars)
      : body_(std::move(body)),
        disjuncts_(std::move(disjuncts)),
        universal_vars_(std::move(universal_vars)) {}

  std::vector<Atom> body_;
  std::vector<std::vector<Atom>> disjuncts_;
  std::vector<Variable> universal_vars_;
  SourceLocation location_;
  std::vector<Variable> declared_existentials_;
};

/// Renders a set of dependencies, one per line.
std::string DependenciesToString(const std::vector<Dependency>& deps);

}  // namespace rdx

#endif  // RDX_CORE_DEPENDENCY_H_
