#include "core/value.h"

#include <cassert>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "base/strings.h"

namespace rdx {
namespace {

// Process-wide interning tables. Guarded by a mutex so generators and tests
// may run concurrently. Allocated on first use and intentionally leaked
// (static-storage objects must be trivially destructible).
struct ValueTables {
  std::mutex mu;
  std::vector<std::string> constant_names;
  std::unordered_map<std::string, uint32_t> constant_ids;
  // Nulls share one id space: named nulls get an entry in null_labels keyed
  // by id; fresh nulls get a synthesized label.
  std::vector<std::string> null_labels;
  std::unordered_map<std::string, uint32_t> null_ids;
};

ValueTables& Tables() {
  static ValueTables& tables = *new ValueTables();
  return tables;
}

}  // namespace

Value Value::MakeConstant(std::string_view name) {
  ValueTables& t = Tables();
  std::lock_guard<std::mutex> lock(t.mu);
  std::string key(name);
  auto it = t.constant_ids.find(key);
  if (it != t.constant_ids.end()) {
    return Value(Kind::kConstant, it->second);
  }
  uint32_t id = static_cast<uint32_t>(t.constant_names.size());
  t.constant_names.push_back(key);
  t.constant_ids.emplace(std::move(key), id);
  return Value(Kind::kConstant, id);
}

Value Value::MakeInt(int64_t v) { return MakeConstant(StrCat(v)); }

Value Value::MakeNull(std::string_view name) {
  ValueTables& t = Tables();
  std::lock_guard<std::mutex> lock(t.mu);
  std::string key(name);
  auto it = t.null_ids.find(key);
  if (it != t.null_ids.end()) {
    return Value(Kind::kNull, it->second);
  }
  uint32_t id = static_cast<uint32_t>(t.null_labels.size());
  t.null_labels.push_back(key);
  t.null_ids.emplace(std::move(key), id);
  return Value(Kind::kNull, id);
}

Value Value::FreshNull() {
  ValueTables& t = Tables();
  std::lock_guard<std::mutex> lock(t.mu);
  uint32_t id = static_cast<uint32_t>(t.null_labels.size());
  std::string label = StrCat("N", id);
  // Synthesized labels could in principle collide with user labels; bump
  // the id until the label is unused.
  while (t.null_ids.count(label) > 0) {
    label = StrCat("N", id, "_");
  }
  t.null_labels.push_back(label);
  t.null_ids.emplace(std::move(label), id);
  return Value(Kind::kNull, id);
}

std::string Value::name() const {
  ValueTables& t = Tables();
  std::lock_guard<std::mutex> lock(t.mu);
  if (kind_ == Kind::kConstant) {
    assert(id_ < t.constant_names.size());
    return t.constant_names[id_];
  }
  assert(id_ < t.null_labels.size());
  return t.null_labels[id_];
}

std::string Value::ToString() const {
  if (IsConstant()) return name();
  return StrCat("?", name());
}

}  // namespace rdx
