#ifndef RDX_CORE_INSTANCE_H_
#define RDX_CORE_INSTANCE_H_

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/status.h"
#include "core/fact.h"
#include "core/schema.h"
#include "core/value.h"

namespace rdx {

/// A map renaming values to values, used for homomorphism images and null
/// renaming. Values not present are mapped to themselves.
using ValueMap = std::unordered_map<Value, Value, ValueHash>;

/// A finite relational instance: a set of facts over arbitrary relation
/// symbols, with values from Const ∪ Var. Instances are value types with
/// set semantics (duplicate facts collapse).
///
/// Instances are not tied to a schema object; use ConformsTo() to validate
/// that all facts use relations of a given schema.
class Instance {
 public:
  Instance() = default;

  /// Builds an instance from facts (duplicates collapse).
  static Instance FromFacts(const std::vector<Fact>& facts);

  /// Adds a fact; returns true if it was not already present.
  bool AddFact(const Fact& fact);

  /// Removes a fact; returns true if it was present.
  bool RemoveFact(const Fact& fact);

  bool Contains(const Fact& fact) const { return fact_set_.count(fact) > 0; }

  /// All facts, in insertion order (stable across runs for determinism).
  /// Stored in a deque so references remain valid across AddFact — the
  /// chase relies on this to update fact indexes incrementally.
  const std::deque<Fact>& facts() const { return facts_; }

  /// Facts of a specific relation, in insertion order. Pointers reference
  /// this instance's (append-stable) storage — no fact copies; they stay
  /// valid across AddFact but not RemoveFact. Callers filtering by
  /// relation repeatedly should build a FactIndex instead.
  std::vector<const Fact*> FactsOf(Relation relation) const;

  /// Builds an instance from pointers into another instance's storage
  /// (duplicates collapse). Used by the core engine to materialize the
  /// surviving facts of a masked instance in insertion order.
  static Instance FromFactPointers(const std::vector<const Fact*>& facts);

  /// Distinct relation symbols with at least one fact.
  std::vector<Relation> Relations() const;

  std::size_t size() const { return facts_.size(); }
  bool empty() const { return facts_.empty(); }

  /// All values occurring in some fact (the active domain).
  std::vector<Value> ActiveDomain() const;

  /// The labeled nulls occurring in some fact.
  std::vector<Value> Nulls() const;

  /// True if every fact is ground (no nulls).
  bool IsGround() const;

  /// True if every fact's relation belongs to `schema`.
  bool ConformsTo(const Schema& schema) const;

  /// Returns the image instance h(I): every value v replaced by h(v)
  /// (identity where h is not defined). Note the image may be smaller than
  /// I when h collapses facts.
  Instance Apply(const ValueMap& h) const;

  /// Returns a copy with every null replaced by a globally fresh null
  /// (consistently: equal nulls map to the same fresh null). `renaming_out`
  /// (optional) receives the old→new map.
  Instance RenameNullsFresh(ValueMap* renaming_out = nullptr) const;

  /// Returns a copy whose labeled nulls are renamed to the canonical
  /// labels "c0", "c1", ... in a structure-determined order (iterated
  /// color refinement over null occurrences, with individualization for
  /// tied classes), so that isomorphic instances render identically
  /// whenever refinement separates the nulls — in particular byte-equal
  /// ToString() output across processes. Automorphic nulls (interchangeable
  /// by symmetry) also render identically regardless of which one the
  /// tie-break picks. The heuristic is not a full graph-canonization: two
  /// isomorphic instances with refinement-inseparable, non-automorphic
  /// nulls may still render differently (use AreIsomorphic for an exact
  /// check). Ground instances are returned unchanged.
  Instance CanonicalForm() const;

  /// Process-independent rendering: CanonicalForm(), then facts sorted by
  /// their rendered text instead of interned ids. ToString()'s id order
  /// depends on the process's interning history (text parse order vs RDXC
  /// dictionary order vs a long-running daemon's accumulated table), so
  /// byte-comparing output across processes — the --canonical contract of
  /// rdx_cli and every rdx_serve reply — must go through this instead.
  std::string CanonicalText() const;

  /// Set union of the two instances.
  static Instance Union(const Instance& a, const Instance& b);

  /// True if every fact of this instance is a fact of `other`.
  bool SubsetOf(const Instance& other) const;

  /// Set equality (same facts, any order).
  friend bool operator==(const Instance& a, const Instance& b);
  friend bool operator!=(const Instance& a, const Instance& b) {
    return !(a == b);
  }

  /// Canonical rendering: facts sorted, "{P(a, ?X), Q(b)}".
  std::string ToString() const;

  /// Order-insensitive hash (for use as a set/map key).
  std::size_t Hash() const;

 private:
  std::deque<Fact> facts_;
  std::unordered_set<Fact, FactHash> fact_set_;
};

struct InstanceHash {
  std::size_t operator()(const Instance& i) const { return i.Hash(); }
};

}  // namespace rdx

#endif  // RDX_CORE_INSTANCE_H_
